/**
 * @file
 * dacsim-fuzz: the generative differential-fuzzing campaign driver
 * (DESIGN.md §12).
 *
 * Usage:
 *   dacsim-fuzz [--seeds N] [--first-seed N] [--jobs N] [--dir DIR]
 *               [--timeout-ms N] [--faults SPEC] [--inject-bug]
 *               [--no-shrink] [--fork|--in-process] [--json FILE]
 *               [--abort-after N]
 *   dacsim-fuzz --one SEED          run a single case, report verbosely
 *   dacsim-fuzz --print SEED        print the generated kernel source
 *   dacsim-fuzz --replay FILE...    replay repro/corpus files (exit 0
 *                                   when every file passes the oracle)
 *
 * A campaign runs seeds [first, first+N) through the differential
 * oracle, one crash-isolated child per case (fork+exec of this binary;
 * --fork keeps the child in-image, --in-process disables isolation).
 * With --dir the campaign journals every verdict and resumes
 * byte-identically after a kill; failing cases are shrunk to
 * self-contained repro files there. Failures print one JSON line each
 * (PR-1 error-report schema) to stderr; the exit status is non-zero
 * when any case failed. Defaults come from the DACSIM_FUZZ_* knobs
 * (see --help).
 */

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "fuzz/campaign.h"
#include "fuzz/shrink.h"

using namespace dacsim;
using namespace dacsim::bench;
using namespace dacsim::fuzz;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dacsim-fuzz [--seeds N] [--first-seed N] [--jobs N]\n"
        "                   [--dir DIR] [--timeout-ms N] [--faults SPEC]\n"
        "                   [--inject-bug] [--no-shrink] [--fork]\n"
        "                   [--in-process] [--json FILE] [--abort-after N]\n"
        "       dacsim-fuzz --one SEED | --print SEED | --replay FILE...\n"
        "\n%s",
        envHelpText().c_str());
    return 2;
}

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return buf;
}

/** --child-case: run one oracle case and print its exact verdict
 * encoding (the ForkExec campaign protocol). */
int
childCase(std::uint64_t seed, const CampaignOptions &opt)
{
    OracleVerdict v = runOracleSeed(seed, campaignOracleOptions(opt));
    std::printf("%s\n", encodeVerdict(v).c_str());
    return 0;
}

int
oneCase(std::uint64_t seed, const CampaignOptions &opt)
{
    GeneratedKernel g = generateKernel(seed);
    std::printf("seed %llu: %s\n",
                static_cast<unsigned long long>(seed),
                g.params.describe().c_str());
    OracleVerdict v = runOracle(g.source, seed, campaignOracleOptions(opt));
    std::printf("verdict: %s%s%s\n", oracleStatusName(v.status),
                v.detail.empty() ? "" : " — ", v.detail.c_str());
    for (const TechRecord &t : v.techs)
        std::printf("  %-8s checksum=%016llx cycles=%llu%s%s\n",
                    techniqueName(t.tech),
                    static_cast<unsigned long long>(t.checksum),
                    static_cast<unsigned long long>(t.cycles),
                    t.fellBack ? " (fellBack)" : "",
                    t.error != RunErrorKind::None ? " (error)" : "");
    return v.ok() ? 0 : 1;
}

int
replayFiles(const std::vector<std::string> &paths,
            const CampaignOptions &opt)
{
    int failures = 0;
    for (const std::string &path : paths) {
        std::ifstream is(path);
        if (!is.good()) {
            std::fprintf(stderr, "dacsim-fuzz: cannot read %s\n",
                         path.c_str());
            ++failures;
            continue;
        }
        std::ostringstream text;
        text << is.rdbuf();
        const std::uint64_t seed = reproSeed(text.str());
        OracleVerdict v =
            runOracle(text.str(), seed, campaignOracleOptions(opt));
        std::printf("%s: %s%s%s\n", path.c_str(),
                    oracleStatusName(v.status),
                    v.detail.empty() ? "" : " — ", v.detail.c_str());
        if (!v.ok())
            ++failures;
    }
    return failures > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain("dacsim-fuzz", [&]() -> int {
        CampaignOptions opt;
        opt.numSeeds = env().fuzzSeeds;
        opt.jobs = env().fuzzJobs > 0 ? env().fuzzJobs : env().jobs;
        opt.dir = env().fuzzDir;
        opt.timeoutMs = env().fuzzTimeoutMs;
        opt.faultSpec = env().faults;
        opt.abortAfter = env().sweepAbortAfter;
        opt.isolation = CampaignOptions::Isolation::ForkExec;

        std::string jsonPath;
        bool haveOne = false, havePrint = false, haveChild = false;
        std::uint64_t oneSeed = 0;
        std::vector<std::string> replays;
        bool replayMode = false;

        auto needArg = [&](int &i) -> const char * {
            if (++i >= argc) {
                std::exit(usage());
            }
            return argv[i];
        };
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--seeds") == 0)
                opt.numSeeds = std::atoi(needArg(i));
            else if (std::strcmp(argv[i], "--first-seed") == 0)
                opt.firstSeed = std::strtoull(needArg(i), nullptr, 10);
            else if (std::strcmp(argv[i], "--jobs") == 0)
                opt.jobs = std::atoi(needArg(i));
            else if (std::strcmp(argv[i], "--dir") == 0)
                opt.dir = needArg(i);
            else if (std::strcmp(argv[i], "--timeout-ms") == 0)
                opt.timeoutMs = std::atoi(needArg(i));
            else if (std::strcmp(argv[i], "--faults") == 0)
                opt.faultSpec = needArg(i);
            else if (std::strcmp(argv[i], "--inject-bug") == 0)
                opt.oracle.dac.bugPerturbAffineImm = true;
            else if (std::strcmp(argv[i], "--no-shrink") == 0)
                opt.shrinkFailures = false;
            else if (std::strcmp(argv[i], "--fork") == 0)
                opt.isolation = CampaignOptions::Isolation::Fork;
            else if (std::strcmp(argv[i], "--in-process") == 0)
                opt.isolation = CampaignOptions::Isolation::InProcess;
            else if (std::strcmp(argv[i], "--json") == 0)
                jsonPath = needArg(i);
            else if (std::strcmp(argv[i], "--abort-after") == 0)
                opt.abortAfter = std::atol(needArg(i));
            else if (std::strcmp(argv[i], "--one") == 0) {
                haveOne = true;
                oneSeed = std::strtoull(needArg(i), nullptr, 10);
            } else if (std::strcmp(argv[i], "--print") == 0) {
                havePrint = true;
                oneSeed = std::strtoull(needArg(i), nullptr, 10);
            } else if (std::strcmp(argv[i], "--child-case") == 0) {
                haveChild = true;
                oneSeed = std::strtoull(needArg(i), nullptr, 10);
            } else if (std::strcmp(argv[i], "--replay") == 0) {
                replayMode = true;
            } else if (std::strcmp(argv[i], "--help") == 0 ||
                       std::strcmp(argv[i], "-h") == 0) {
                return usage();
            } else if (argv[i][0] == '-') {
                return usage();
            } else if (replayMode) {
                replays.emplace_back(argv[i]);
            } else {
                return usage();
            }
        }

        if (haveChild)
            return childCase(oneSeed, opt);
        if (havePrint) {
            GeneratedKernel g = generateKernel(oneSeed);
            std::printf("// seed: %llu\n// params: %s\n%s",
                        static_cast<unsigned long long>(oneSeed),
                        g.params.describe().c_str(), g.source.c_str());
            return 0;
        }
        if (haveOne)
            return oneCase(oneSeed, opt);
        if (replayMode) {
            if (replays.empty())
                return usage();
            return replayFiles(replays, opt);
        }

        if (opt.isolation == CampaignOptions::Isolation::ForkExec) {
            opt.execPath = selfExePath();
            if (opt.execPath.empty())
                opt.isolation = CampaignOptions::Isolation::Fork;
        }

        int done = 0;
        opt.onCase = [&](const CaseResult &r) {
            ++done;
            if (caseFailed(r.status))
                std::fprintf(stderr, "%s\n", caseFailureJson(r).c_str());
            if (done % 100 == 0 || done == opt.numSeeds)
                std::fprintf(stderr, "dacsim-fuzz: %d/%d cases\n", done,
                             opt.numSeeds);
        };

        CampaignReport rep = runCampaign(opt);
        if (!jsonPath.empty()) {
            std::ofstream os(jsonPath, std::ios::trunc);
            if (!os.good()) {
                std::fprintf(stderr, "dacsim-fuzz: cannot write %s\n",
                             jsonPath.c_str());
                return 2;
            }
            os << rep.renderJson();
        }
        std::printf("dacsim-fuzz: %d case(s), %d match, %d failure(s), "
                    "%d from journal, digest %016llx\n",
                    rep.numSeeds, rep.numMatch, rep.numFailed,
                    rep.numFromJournal,
                    static_cast<unsigned long long>(rep.verdictDigest));
        return rep.ok() ? 0 : 1;
    });
}
