/**
 * @file
 * Figure 6 — Percentage of Instructions Computing on Scalar Data and
 * Thread IDs. Static classification by the affine type analysis,
 * split into the paper's three bars (arithmetic / memory / branch).
 */

#include <cstdio>

#include "bench_util.h"
#include "compiler/decoupler.h"
#include "mem/gpu_memory.h"

using namespace dacsim;

namespace
{

int
run(const bench::Cli &cli)
{
    bench::printHeader("Figure 6: Potentially Affine Static Instructions");
    std::printf("%-5s %6s %6s %6s %8s   (%% of static instructions)\n",
                "bench", "arith", "mem", "branch", "total");

    const std::vector<Workload> works = bench::selectWorkloads(cli);
    std::vector<PotentialAffine> cls(works.size());
    // Preparation and classification are shared-nothing, so the
    // per-workload analysis parallelizes like a sweep; printing stays
    // serial below.
    parallelFor(works.size(), [&](std::size_t i) {
        GpuMemory gmem;
        PreparedWorkload prep = works[i].prepare(gmem, 0.1);
        cls[i] = classifyPotentialAffine(prep.kernel);
    });

    std::vector<double> fractions;
    for (std::size_t wi = 0; wi < works.size(); ++wi) {
        const Workload &w = works[wi];
        const PotentialAffine &pa = cls[wi];
        double tot = static_cast<double>(pa.totalInsts);
        std::printf("%-5s %5.1f%% %5.1f%% %5.1f%% %7.1f%%\n",
                    w.name.c_str(), 100.0 * pa.arithmetic / tot,
                    100.0 * pa.memory / tot, 100.0 * pa.branch / tot,
                    100.0 * pa.fraction());
        fractions.push_back(pa.fraction());
    }
    std::printf("\nMEAN potentially-affine fraction: %.1f%% "
                "(paper: about half)\n",
                100.0 * bench::geomean(fractions));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "fig6_potential_affine", run);
}
