/**
 * @file
 * dacsim-predict: static cycle-bound and affine-coverage prediction
 * (DESIGN.md §15) over the registered workload kernels.
 *
 * Usage:
 *   dacsim-predict [--all] [--quick] [--scale S] [--json FILE]
 *                  [--json-one FILE] [--text-one FILE] [--quiet]
 *                  [WORKLOAD...]
 *
 * The default mode predicts each named workload (all 29 with no
 * arguments) and prints the text reports; --json-one / --text-one
 * (exactly one workload) write that kernel's report in the golden-
 * fixture formats under tests/golden/.
 *
 * --all runs the validation sweep: every kernel is predicted AND
 * simulated under baseline and DAC, the guaranteed bounds are checked
 * against the simulated cycles, the predicted coverage against the
 * decoupler's actual split, and the roofline estimate's accuracy
 * (MAPE, Spearman rank correlation) is tracked. The results go to
 * BENCH_predict.json; the exit status is non-zero on any bound or
 * coverage violation, so scripts/check.sh can gate on it.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/predict.h"
#include "bench_util.h"
#include "compiler/decoupler.h"
#include "dac/engine.h"

using namespace dacsim;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: dacsim-predict [--all] [--quick] [--scale S] "
                 "[--json FILE]\n"
                 "                      [--json-one FILE] [--text-one "
                 "FILE] [--quiet] [WORKLOAD...]\n");
    return 2;
}

/** One (kernel, technique) validation point of the --all sweep. */
struct Point
{
    std::string bench;
    Technique tech = Technique::Baseline;
    unsigned long long bound = 0;
    unsigned long long estimate = 0;
    unsigned long long simCycles = 0;
    bool capped = false;
    bool simOk = false;
    bool boundOk = false;
    double issueTerm = 0, dramTerm = 0, latTerm = 0, expTerm = 0;
};

/** Spearman rank correlation (average ranks on ties). */
double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    const std::size_t n = a.size();
    if (n < 2 || b.size() != n)
        return 0.0;
    auto ranks = [&](const std::vector<double> &v) {
        std::vector<std::size_t> idx(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
            return v[x] < v[y];
        });
        std::vector<double> r(v.size());
        std::size_t i = 0;
        while (i < idx.size()) {
            std::size_t j = i;
            while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]])
                ++j;
            const double avg = (static_cast<double>(i) +
                                static_cast<double>(j)) /
                                   2.0 +
                               1.0;
            for (std::size_t k = i; k <= j; ++k)
                r[idx[k]] = avg;
            i = j + 1;
        }
        return r;
    };
    std::vector<double> ra = ranks(a), rb = ranks(b);
    double ma = 0, mb = 0;
    for (std::size_t i = 0; i < n; ++i) {
        ma += ra[i];
        mb += rb[i];
    }
    ma /= static_cast<double>(n);
    mb /= static_cast<double>(n);
    double num = 0, da = 0, db = 0;
    for (std::size_t i = 0; i < n; ++i) {
        num += (ra[i] - ma) * (rb[i] - mb);
        da += (ra[i] - ma) * (ra[i] - ma);
        db += (rb[i] - mb) * (rb[i] - mb);
    }
    if (da == 0 || db == 0)
        return 0.0;
    return num / std::sqrt(da * db);
}

/** Per-kernel coverage comparison of the --all sweep. */
struct CoverageRow
{
    std::string bench;
    double predicted = 0;
    double actual = 0;
    bool anyPredicted = false;
    bool anyActual = false;
};

int
runAll(double scale, bool quick, bool quiet, const std::string &jsonPath,
       const std::vector<std::string> &names)
{
    const RunOptions base{}; // fault-free defaults: what we predict
    std::vector<const Workload *> todo;
    for (const std::string &n : names)
        todo.push_back(&findWorkload(n));

    // Predict every kernel first (cheap, serial), then simulate the
    // (kernel, technique) grid concurrently.
    std::vector<PredictReport> reps;
    std::vector<CoverageRow> cov;
    for (const Workload *wl : todo) {
        GpuMemory gmem;
        PreparedWorkload prep = wl->prepare(gmem, scale);
        reps.push_back(predictKernel(prep.kernel, predictLaunches(prep),
                                     base.gpu, base.dac));
        DacSplitSummary actual =
            dacActualSplit(decouple(prep.kernel, base.dac));
        CoverageRow c;
        c.bench = wl->name;
        c.predicted = reps.back().predictedCoverage;
        c.actual = actual.coveredFraction();
        c.anyPredicted = reps.back().predictedAnyDecoupled;
        c.anyActual = actual.anyDecoupled;
        cov.push_back(c);
    }

    std::vector<bench::SweepJob> jobs;
    for (const Workload *wl : todo) {
        for (Technique t : {Technique::Baseline, Technique::Dac}) {
            bench::SweepJob j;
            j.bench = wl->name;
            j.opt = base;
            j.opt.tech = t;
            j.opt.scale = scale;
            jobs.push_back(std::move(j));
        }
    }
    std::vector<RunOutcome> outs = bench::runSweep(jobs);

    std::vector<Point> points;
    int boundViolations = 0, simFailures = 0, cappedKernels = 0;
    for (std::size_t wi = 0; wi < todo.size(); ++wi) {
        const PredictReport &rep = reps[wi];
        if (rep.base.capped || rep.dac.capped)
            ++cappedKernels;
        for (int ti = 0; ti < 2; ++ti) {
            const Technique t =
                ti == 0 ? Technique::Baseline : Technique::Dac;
            const RunOutcome &out = outs[wi * 2 + ti];
            const TechPredict &tp = ti == 0 ? rep.base : rep.dac;
            Point p;
            p.bench = todo[wi]->name;
            p.tech = t;
            p.bound = tp.boundCycles;
            p.estimate = tp.estimateCycles;
            p.capped = tp.capped;
            p.issueTerm = tp.issueTerm;
            p.dramTerm = tp.dramTerm;
            p.latTerm = tp.latTerm;
            p.expTerm = tp.expTerm;
            // A fallback DAC run executed on the baseline machine: its
            // cycles are not the DAC bound's subject.
            p.simOk = out.error.ok() && !out.fellBack;
            if (!p.simOk) {
                ++simFailures;
                bench::reportRun("predict", p.bench, t, out);
            } else {
                p.simCycles =
                    static_cast<unsigned long long>(out.stats.cycles);
                p.boundOk = p.bound >= p.simCycles;
                if (!p.boundOk)
                    ++boundViolations;
            }
            points.push_back(p);
        }
    }

    double maxCovDiff = 0;
    int covViolations = 0;
    for (const CoverageRow &c : cov) {
        const double d = std::fabs(c.predicted - c.actual);
        maxCovDiff = std::max(maxCovDiff, d);
        if (d > 0.05 || c.anyPredicted != c.anyActual)
            ++covViolations;
    }

    // Estimate accuracy over the clean, uncapped points.
    std::vector<double> est, sim;
    double apeSum = 0;
    int apeN = 0;
    for (const Point &p : points) {
        if (!p.simOk || p.capped || p.simCycles == 0)
            continue;
        est.push_back(static_cast<double>(p.estimate));
        sim.push_back(static_cast<double>(p.simCycles));
        apeSum += std::fabs(static_cast<double>(p.estimate) -
                            static_cast<double>(p.simCycles)) /
                  static_cast<double>(p.simCycles);
        ++apeN;
    }
    const double mape = apeN ? apeSum / apeN : 0.0;
    const double rho = spearman(est, sim);

    if (!quiet) {
        std::printf("%-5s %-8s %16s %16s %16s  %s\n", "bench", "tech",
                    "bound", "sim", "estimate", "ok");
        for (const Point &p : points) {
            std::printf("%-5s %-8s %16llu %16llu %16llu  %s%s\n",
                        p.bench.c_str(), techniqueName(p.tech), p.bound,
                        p.simCycles, p.estimate,
                        !p.simOk ? "sim-failed"
                                 : (p.boundOk ? "yes" : "VIOLATION"),
                        p.capped ? " (capped)" : "");
        }
        std::printf("\ncoverage (predicted vs decoupler):\n");
        for (const CoverageRow &c : cov)
            std::printf("%-5s predicted %6.2f%%  actual %6.2f%%  "
                        "diff %5.2fpp%s\n",
                        c.bench.c_str(), c.predicted * 100,
                        c.actual * 100,
                        std::fabs(c.predicted - c.actual) * 100,
                        c.anyPredicted == c.anyActual ? ""
                                                      : "  DECOUPLED-MISMATCH");
    }
    std::printf("\ndacsim-predict: %zu points, %d bound violation(s), "
                "%d coverage violation(s), %d capped kernel(s), "
                "mape %.3f, spearman %.3f\n",
                points.size(), boundViolations, covViolations,
                cappedKernels, mape, rho);

    std::FILE *f = std::fopen(jsonPath.c_str(), "w");
    require(f != nullptr, "cannot write ", jsonPath);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"predict\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"scale\": %.3f,\n", scale);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(f,
                     "    {\"bench\": \"%s\", \"tech\": \"%s\", "
                     "\"bound_cycles\": %llu, \"sim_cycles\": %llu, "
                     "\"estimate_cycles\": %llu, \"capped\": %s, "
                     "\"sim_ok\": %s, \"bound_ok\": %s, "
                     "\"issue_term\": %.3f, \"dram_term\": %.3f, "
                     "\"lat_term\": %.3f, \"exp_term\": %.3f}%s\n",
                     bench::jsonEscape(p.bench).c_str(),
                     techniqueName(p.tech), p.bound, p.simCycles,
                     p.estimate, p.capped ? "true" : "false",
                     p.simOk ? "true" : "false",
                     p.boundOk ? "true" : "false", p.issueTerm,
                     p.dramTerm, p.latTerm, p.expTerm,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"coverage\": [\n");
    for (std::size_t i = 0; i < cov.size(); ++i) {
        const CoverageRow &c = cov[i];
        std::fprintf(f,
                     "    {\"bench\": \"%s\", \"predicted\": %.6f, "
                     "\"actual\": %.6f, \"diff\": %.6f}%s\n",
                     bench::jsonEscape(c.bench).c_str(), c.predicted,
                     c.actual, std::fabs(c.predicted - c.actual),
                     i + 1 < cov.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"bound_violations\": %d,\n", boundViolations);
    std::fprintf(f, "  \"coverage_violations\": %d,\n", covViolations);
    std::fprintf(f, "  \"coverage_max_diff\": %.6f,\n", maxCovDiff);
    std::fprintf(f, "  \"sim_failures\": %d,\n", simFailures);
    std::fprintf(f, "  \"capped_kernels\": %d,\n", cappedKernels);
    std::fprintf(f, "  \"sound\": %s,\n",
                 boundViolations == 0 ? "true" : "false");
    std::fprintf(f, "  \"mape\": %.6f,\n", mape);
    std::fprintf(f, "  \"spearman\": %.6f\n", rho);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", jsonPath.c_str());

    return (boundViolations > 0 || covViolations > 0 || simFailures > 0)
               ? 1
               : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool all = false, quick = false, quiet = false;
    double scale = bench::figureScale;
    std::string jsonPath, jsonOnePath, textOnePath;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--all") == 0) {
            all = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--scale") == 0) {
            if (++i >= argc)
                return usage();
            scale = std::atof(argv[i]);
            if (scale <= 0)
                return usage();
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (++i >= argc)
                return usage();
            jsonPath = argv[i];
        } else if (std::strcmp(argv[i], "--json-one") == 0) {
            if (++i >= argc)
                return usage();
            jsonOnePath = argv[i];
        } else if (std::strcmp(argv[i], "--text-one") == 0) {
            if (++i >= argc)
                return usage();
            textOnePath = argv[i];
        } else if (argv[i][0] == '-') {
            return usage();
        } else {
            names.emplace_back(argv[i]);
        }
    }

    if (names.empty())
        for (const Workload &wl : allWorkloads())
            names.push_back(wl.name);

    return bench::guardedMain("dacsim-predict", [&]() -> int {
        if (all) {
            if (quick)
                scale = 0.25;
            return runAll(scale, quick, quiet,
                          jsonPath.empty() ? "BENCH_predict.json"
                                           : jsonPath,
                          names);
        }

        const RunOptions base{};
        std::vector<PredictReport> reps;
        for (const std::string &n : names) {
            const Workload &wl = findWorkload(n);
            GpuMemory gmem;
            PreparedWorkload prep = wl.prepare(gmem, scale);
            PredictReport rep = predictKernel(
                prep.kernel, predictLaunches(prep), base.gpu, base.dac);
            if (!quiet)
                std::fputs(rep.renderText().c_str(), stdout);
            reps.push_back(std::move(rep));
        }
        if (!jsonOnePath.empty() || !textOnePath.empty()) {
            if (reps.size() != 1) {
                std::fprintf(stderr,
                             "dacsim-predict: --json-one/--text-one "
                             "need exactly one workload\n");
                return 2;
            }
            if (!textOnePath.empty()) {
                std::ofstream os(textOnePath, std::ios::trunc);
                require(os.good(), "cannot write ", textOnePath);
                os << reps.front().renderText();
            }
            if (!jsonOnePath.empty()) {
                std::ofstream os(jsonOnePath, std::ios::trunc);
                require(os.good(), "cannot write ", jsonOnePath);
                os << reps.front().renderJson();
            }
        }
        if (!jsonPath.empty()) {
            std::ofstream os(jsonPath, std::ios::trunc);
            require(os.good(), "cannot write ", jsonPath);
            os << "[\n";
            for (std::size_t i = 0; i < reps.size(); ++i)
                os << reps[i].renderJson()
                   << (i + 1 < reps.size() ? ",\n" : "\n");
            os << "]\n";
        }
        return 0;
    });
}
