/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: category
 * partitions matching Table 2, geometric means, simple fixed-width
 * table printing in the spirit of the paper's figures, and the
 * crash-isolation utilities every driver uses — a guarded main that
 * turns uncaught simulator errors into diagnostics instead of aborts,
 * JSON error reports for failed runs within a sweep, and fault-plan
 * injection from the environment (DACSIM_FAULTS / DACSIM_FAULT_BENCHES).
 */

#ifndef DACSIM_BENCH_BENCH_UTIL_H
#define DACSIM_BENCH_BENCH_UTIL_H

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/journal.h"
#include "harness/runner.h"
#include "harness/sweep.h"

namespace dacsim::bench
{

/** Workload scale used by all figure reproductions. */
inline constexpr double figureScale = 1.0;

inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** Benchmarks in Table 2 order, split by category. */
inline std::vector<std::string>
benchNames(bool memory_intensive)
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (w.memoryIntensive == memory_intensive)
            names.push_back(w.name);
    return names;
}

inline void
printHeader(const std::string &title)
{
    std::printf("=============================================================="
                "==\n");
    std::printf("%s\n", title.c_str());
    std::printf("=============================================================="
                "==\n");
}

inline void
printBar(const std::string &label, double value, double unit_per_char,
         const std::string &suffix)
{
    std::printf("%-5s %8.2f %-7s |", label.c_str(), value,
                suffix.c_str());
    int n = static_cast<int>(value / unit_per_char);
    for (int i = 0; i < n && i < 60; ++i)
        std::printf("#");
    std::printf("\n");
}

// ----- parallel sweeps ----------------------------------------------------

/** One independent run of a sweep: a benchmark under given options. */
struct SweepJob
{
    std::string bench;
    RunOptions opt;
};

/** Snapshot/journal directory for sweeps (DACSIM_CHECKPOINT_DIR), or
 * empty when checkpointing is off. */
inline std::string
checkpointDir()
{
    const char *d = std::getenv("DACSIM_CHECKPOINT_DIR");
    return (d != nullptr && *d != '\0') ? std::string(d) : std::string();
}

/**
 * Execute every job concurrently on DACSIM_JOBS workers (default: the
 * hardware concurrency) and return the outcomes in job order. The
 * runs are shared-nothing, so the result — and every simulated
 * statistic in it — is byte-identical to running the jobs serially;
 * callers do all printing/reporting afterwards, on their own thread.
 *
 * When @p figure is given and DACSIM_CHECKPOINT_DIR is set, the sweep
 * is resumable (DESIGN.md §9): completed points are journalled to
 * `<dir>/<figure>.sweep.journal` and served from disk on a restart, so
 * a killed sweep re-runs only its missing points and reproduces its
 * report byte-identically. Each point also checkpoints its simulator
 * state to `<dir>/<figure>-<index>.snap`, so a restart resumes the
 * point that was mid-flight at the kill from its last snapshot. The
 * DACSIM_SWEEP_ABORT_AFTER=<n> knob kills the process (as a kill -9
 * would, skipping all cleanup) after n freshly computed points — it
 * exists so tests and scripts/check.sh can exercise the kill/restart
 * path deterministically.
 */
inline std::vector<RunOutcome>
runSweep(const std::vector<SweepJob> &jobs, const char *figure = nullptr)
{
    std::vector<RunOutcome> out(jobs.size());
    const std::string dir = figure != nullptr ? checkpointDir() : "";
    if (dir.empty()) {
        parallelFor(jobs.size(), [&](std::size_t i) {
            out[i] = runWorkload(jobs[i].bench, jobs[i].opt);
        });
        return out;
    }

    SweepJournal journal(dir + "/" + figure + ".sweep.journal");
    long abortAfter = 0;
    if (const char *a = std::getenv("DACSIM_SWEEP_ABORT_AFTER");
        a != nullptr && *a != '\0')
        abortAfter = std::atol(a);
    std::atomic<long> fresh{0};
    parallelFor(jobs.size(), [&](std::size_t i) {
        std::string key = std::to_string(i) + "|" + jobs[i].bench + "|" +
                          techniqueName(jobs[i].opt.tech);
        if (journal.lookup(key, &out[i]))
            return; // completed before the kill: byte-exact from disk
        SweepJob j = jobs[i];
        j.opt.checkpoint.dir = dir;
        j.opt.checkpoint.tag =
            std::string(figure) + "-" + std::to_string(i);
        // A restart first tries the point's own snapshot, so the run
        // that was mid-flight at the kill continues instead of
        // restarting from cycle 0 (results are bit-identical either
        // way; see CheckpointRoundTrip tests).
        j.opt.checkpoint.resume = true;
        out[i] = runWorkload(j.bench, j.opt);
        if (out[i].error.kind == RunErrorKind::Fatal) {
            // A stale or incompatible snapshot (config changed between
            // sweeps sharing a directory) must not poison the point:
            // re-run it from scratch.
            j.opt.checkpoint.resume = false;
            out[i] = runWorkload(j.bench, j.opt);
        }
        journal.record(key, out[i]);
        if (abortAfter > 0 &&
            fresh.fetch_add(1, std::memory_order_relaxed) + 1 >=
                abortAfter)
            std::_Exit(3); // simulate a kill: no cleanup, journal holds
    });
    return out;
}

// ----- crash isolation & fault injection ---------------------------------

/**
 * Fault plan for one benchmark of a sweep, read from the environment:
 * DACSIM_FAULTS holds a FaultPlan::parse() spec, DACSIM_FAULT_BENCHES
 * an optional comma-separated list of benchmark abbreviations the plan
 * applies to (unset or empty: all benchmarks). Returns an empty plan
 * when no injection is requested for @p bench.
 */
inline FaultPlan
faultPlanFor(const std::string &bench)
{
    const char *spec = std::getenv("DACSIM_FAULTS");
    if (spec == nullptr || *spec == '\0')
        return {};
    if (const char *only = std::getenv("DACSIM_FAULT_BENCHES");
        only != nullptr && *only != '\0') {
        std::string list(only);
        bool match = false;
        std::size_t pos = 0;
        while (pos <= list.size()) {
            std::size_t sep = list.find(',', pos);
            if (sep == std::string::npos)
                sep = list.size();
            if (list.substr(pos, sep - pos) == bench) {
                match = true;
                break;
            }
            pos = sep + 1;
        }
        if (!match)
            return {};
    }
    return FaultPlan::parse(spec);
}

inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Emit a one-line JSON error report to stderr for a failed or degraded
 * run and return whether the sweep may use the outcome's numbers.
 * Clean runs print nothing.
 */
inline bool
reportRun(const char *figure, const std::string &bench, Technique tech,
          const RunOutcome &out)
{
    if (out.error.ok())
        return true;
    // fault_seed / checkpoint / last_hash give a failed run enough
    // context to reproduce: re-run with the same seed, resume from the
    // named snapshot, and compare hash chains up to last_hash.
    std::fprintf(
        stderr,
        "{\"figure\":\"%s\",\"bench\":\"%s\",\"tech\":\"%s\","
        "\"status\":\"%s\",\"kind\":\"%s\",\"cycle\":%llu,"
        "\"what\":\"%s\",\"fault_seed\":%llu,\"checkpoint\":\"%s\","
        "\"last_hash\":\"%016llx\",\"resumed\":%s}\n",
        figure, jsonEscape(bench).c_str(), techniqueName(tech),
        out.fellBack ? "fallback" : "error",
        runErrorKindName(out.error.kind),
        static_cast<unsigned long long>(out.error.cycle),
        jsonEscape(out.error.what).c_str(),
        static_cast<unsigned long long>(out.faultSeed),
        jsonEscape(out.checkpointId).c_str(),
        static_cast<unsigned long long>(out.lastStateHash),
        out.resumed ? "true" : "false");
    return out.ok();
}

/**
 * Run @p body with top-level FatalError/PanicError isolation: an
 * uncaught simulator error prints a diagnostic (instead of a bare
 * std::terminate abort) and exits non-zero.
 */
inline int
guardedMain(const char *name, const std::function<int()> &body)
{
    try {
        return body();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: user error: %s\n", name, e.what());
    } catch (const PanicError &e) {
        std::fprintf(stderr, "%s: simulator bug: %s\n", name, e.what());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: unexpected error: %s\n", name, e.what());
    }
    return 1;
}

} // namespace dacsim::bench

#endif // DACSIM_BENCH_BENCH_UTIL_H
