/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: category
 * partitions matching Table 2, geometric means, and simple fixed-
 * width table printing in the spirit of the paper's figures.
 */

#ifndef DACSIM_BENCH_BENCH_UTIL_H
#define DACSIM_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/runner.h"

namespace dacsim::bench
{

/** Workload scale used by all figure reproductions. */
inline constexpr double figureScale = 1.0;

inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** Benchmarks in Table 2 order, split by category. */
inline std::vector<std::string>
benchNames(bool memory_intensive)
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (w.memoryIntensive == memory_intensive)
            names.push_back(w.name);
    return names;
}

inline void
printHeader(const std::string &title)
{
    std::printf("=============================================================="
                "==\n");
    std::printf("%s\n", title.c_str());
    std::printf("=============================================================="
                "==\n");
}

inline void
printBar(const std::string &label, double value, double unit_per_char,
         const std::string &suffix)
{
    std::printf("%-5s %7s |", label.c_str(), suffix.c_str());
    int n = static_cast<int>(value / unit_per_char);
    for (int i = 0; i < n && i < 60; ++i)
        std::printf("#");
    std::printf("\n");
}

} // namespace dacsim::bench

#endif // DACSIM_BENCH_BENCH_UTIL_H
