/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: category
 * partitions matching Table 2, geometric means, simple fixed-width
 * table printing in the spirit of the paper's figures, the shared CLI
 * front-end every driver mounts (benchMain: --quick, --jobs, --json,
 * --only, --timeline, --chrome-trace, --help with the DACSIM_* env
 * registry), and the crash-isolation utilities — a guarded main that
 * turns uncaught simulator errors into diagnostics instead of aborts,
 * JSON error reports for failed runs within a sweep, and fault-plan
 * injection via RunOptions::fromEnv.
 */

#ifndef DACSIM_BENCH_BENCH_UTIL_H
#define DACSIM_BENCH_BENCH_UTIL_H

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/env.h"
#include "harness/journal.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "obs/timeline_json.h"
#include "service/router.h"

namespace dacsim::bench
{

/** Workload scale used by all figure reproductions. */
inline constexpr double figureScale = 1.0;

inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** Benchmarks in Table 2 order, split by category. */
inline std::vector<std::string>
benchNames(bool memory_intensive)
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (w.memoryIntensive == memory_intensive)
            names.push_back(w.name);
    return names;
}

inline void
printHeader(const std::string &title)
{
    std::printf("=============================================================="
                "==\n");
    std::printf("%s\n", title.c_str());
    std::printf("=============================================================="
                "==\n");
}

inline void
printBar(const std::string &label, double value, double unit_per_char,
         const std::string &suffix)
{
    std::printf("%-5s %8.2f %-7s |", label.c_str(), value,
                suffix.c_str());
    int n = static_cast<int>(value / unit_per_char);
    for (int i = 0; i < n && i < 60; ++i)
        std::printf("#");
    std::printf("\n");
}

// ----- parallel sweeps ----------------------------------------------------

/** One independent run of a sweep: a benchmark under given options. */
struct SweepJob
{
    std::string bench;
    RunOptions opt;
};

/** Snapshot/journal directory for sweeps (DACSIM_CHECKPOINT_DIR), or
 * empty when checkpointing is off. */
inline std::string
checkpointDir()
{
    return env().checkpointDir;
}

/**
 * Execute every job concurrently on DACSIM_JOBS workers (default: the
 * hardware concurrency) and return the outcomes in job order. The
 * runs are shared-nothing, so the result — and every simulated
 * statistic in it — is byte-identical to running the jobs serially;
 * callers do all printing/reporting afterwards, on their own thread.
 *
 * When @p figure is given and DACSIM_CHECKPOINT_DIR is set, the sweep
 * is resumable (DESIGN.md §9): completed points are journalled to
 * `<dir>/<figure>.sweep.journal` and served from disk on a restart, so
 * a killed sweep re-runs only its missing points and reproduces its
 * report byte-identically. Each point also checkpoints its simulator
 * state to `<dir>/<figure>-<index>.snap`, so a restart resumes the
 * point that was mid-flight at the kill from its last snapshot. The
 * DACSIM_SWEEP_ABORT_AFTER=<n> knob kills the process (as a kill -9
 * would, skipping all cleanup) after n freshly computed points — it
 * exists so tests and scripts/check.sh can exercise the kill/restart
 * path deterministically.
 */
/**
 * The fault spec one benchmark's service job must carry: DACSIM_FAULTS
 * when DACSIM_FAULT_BENCHES is empty or names @p bench, else "" — the
 * same filter RunOptions::fromEnv(bench) applies locally, so a sweep
 * routed through dacsimd runs the identical fault plans.
 */
inline std::string
serviceFaultSpec(const std::string &bench)
{
    const std::string spec = env().faults;
    if (spec.empty())
        return "";
    const std::string benches = env().faultBenches;
    if (benches.empty())
        return spec;
    std::size_t pos = 0;
    while (pos <= benches.size()) {
        std::size_t sep = benches.find(',', pos);
        if (sep == std::string::npos)
            sep = benches.size();
        if (sep > pos && benches.compare(pos, sep - pos, bench) == 0)
            return spec;
        pos = sep + 1;
    }
    return "";
}

/**
 * Write the timeline JSON a service sweep streamed for one job. The
 * samples section is rendered by the same writer the in-process
 * collector uses (obs/timeline_json.h), so its bytes match a direct
 * `--timeline` run's exactly. The per-SM/per-warp stall tables are
 * end-of-run diagnostics that do not stream; the cumulative totals
 * do, and close the file in their place.
 */
inline void
writeStreamedTimeline(const std::string &path, const SweepJob &job,
                      const std::vector<TimelineSample> &samples,
                      const StallStats &stalls)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write timeline ", path);
    TimelineMeta meta;
    meta.bench = job.bench;
    meta.tech = techniqueName(job.opt.tech);
    meta.scale = job.opt.scale;
    writeTimelinePrefix(f, meta, samples);
    std::fprintf(f, "  \"stalls\": {\n    ");
    writeStallReasons(f, stalls);
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
}

/**
 * Client mode of runSweep(): route every job through the shard router
 * (DACSIM_SERVICE_SHARDS, or the single daemon at
 * DACSIM_SERVICE_SOCKET) and collect the typed JobResults. Each
 * worker thread holds its own router — and through it its own
 * per-shard connections — so the daemons' pools run the jobs
 * concurrently; content-addressed caching and client-side failover
 * make resubmitted sweeps (and a daemon killed mid-sweep) converge to
 * the same byte-identical outcomes a direct run produces. Jobs are
 * stamped with the DACSIM_SERVICE_CLIENT / DACSIM_SERVICE_WEIGHT
 * admission identity. A job that asked for a timeline
 * (RunOptions::obs::timelinePath) sets JobSpec::progress and
 * reassembles the streamed samples into the timeline file here —
 * observability travels as JobProgress frames, not as host-local
 * state; Chrome traces and checkpoint options stay host-local and
 * off on the service side.
 */
inline std::vector<RunOutcome>
runSweepViaService(const std::vector<SweepJob> &jobs)
{
    std::vector<RunOutcome> out(jobs.size());
    std::vector<std::string> failed(jobs.size());
    parallelFor(jobs.size(), [&](std::size_t i) {
        static thread_local std::unique_ptr<service::ShardRouter> router;
        if (!router)
            router = std::make_unique<service::ShardRouter>(
                service::ShardRouter::shardsFromEnv());
        service::JobSpec spec;
        spec.id = i + 1;
        spec.bench = jobs[i].bench;
        spec.tech = jobs[i].opt.tech;
        spec.setScale(jobs[i].opt.scale);
        spec.faultSpec = serviceFaultSpec(jobs[i].bench);
        spec.client = env().serviceClient;
        spec.weight = env().serviceWeight;

        std::vector<TimelineSample> samples;
        StallStats stalls{};
        const std::string timelinePath = jobs[i].opt.obs.timelinePath;
        if (!timelinePath.empty()) {
            spec.progress = true;
            router->onProgress([&](const service::JobProgress &p) {
                // A retried or failed-over job restarts its stream;
                // the non-increasing cycle marks the reset.
                if (!samples.empty() &&
                    p.sample.cycle <= samples.back().cycle)
                    samples.clear();
                samples.push_back(p.sample);
                stalls = p.stalls;
            });
        }
        service::JobResult rs;
        std::string err;
        const bool reached = router->call(spec, &rs, &err);
        if (!timelinePath.empty())
            router->onProgress({});
        if (!reached)
            fatal("service sweep: ", err);
        if (!rs.ok()) {
            // Structured service-level failure (the daemon already
            // exhausted its retries): keep the PR-1 JSON report and
            // record a deadlock-class error so reporting skips the
            // point instead of trusting empty numbers.
            failed[i] = rs.errorJson;
            out[i].error.kind = RunErrorKind::Deadlock;
            out[i].error.what = "service job failed: " + rs.errorJson;
            return;
        }
        out[i] = rs.outcome;
        if (!timelinePath.empty())
            writeStreamedTimeline(timelinePath, jobs[i], samples, stalls);
    });
    for (const std::string &json : failed)
        if (!json.empty())
            std::fprintf(stderr, "%s\n", json.c_str());
    return out;
}

inline std::vector<RunOutcome>
runSweep(const std::vector<SweepJob> &jobs, const char *figure = nullptr)
{
    if (!env().serviceShards.empty() || !env().serviceSocket.empty())
        return runSweepViaService(jobs);
    std::vector<RunOutcome> out(jobs.size());
    const std::string dir = figure != nullptr ? checkpointDir() : "";
    if (dir.empty()) {
        parallelFor(jobs.size(), [&](std::size_t i) {
            out[i] = runWorkload(jobs[i].bench, jobs[i].opt);
        });
        return out;
    }

    SweepJournal journal(dir + "/" + figure + ".sweep.journal");
    const long abortAfter = env().sweepAbortAfter;
    std::atomic<long> fresh{0};
    parallelFor(jobs.size(), [&](std::size_t i) {
        std::string key = std::to_string(i) + "|" + jobs[i].bench + "|" +
                          techniqueName(jobs[i].opt.tech);
        if (journal.lookup(key, &out[i]))
            return; // completed before the kill: byte-exact from disk
        SweepJob j = jobs[i];
        j.opt.checkpoint.dir = dir;
        j.opt.checkpoint.tag =
            std::string(figure) + "-" + std::to_string(i);
        // A restart first tries the point's own snapshot, so the run
        // that was mid-flight at the kill continues instead of
        // restarting from cycle 0 (results are bit-identical either
        // way; see CheckpointRoundTrip tests).
        j.opt.checkpoint.resume = true;
        out[i] = runWorkload(j.bench, j.opt);
        if (out[i].error.kind == RunErrorKind::Fatal) {
            // A stale or incompatible snapshot (config changed between
            // sweeps sharing a directory) must not poison the point:
            // re-run it from scratch.
            j.opt.checkpoint.resume = false;
            out[i] = runWorkload(j.bench, j.opt);
        }
        journal.record(key, out[i]);
        if (abortAfter > 0 &&
            fresh.fetch_add(1, std::memory_order_relaxed) + 1 >=
                abortAfter)
            std::_Exit(3); // simulate a kill: no cleanup, journal holds
    });
    return out;
}

// ----- crash isolation & fault injection ---------------------------------

/**
 * Fault plan for one benchmark of a sweep: DACSIM_FAULTS holds a
 * FaultPlan::parse() spec, DACSIM_FAULT_BENCHES an optional
 * comma-separated list of benchmark abbreviations the plan applies to
 * (unset or empty: all benchmarks). A thin name for the fault part of
 * RunOptions::fromEnv(bench).
 */
inline FaultPlan
faultPlanFor(const std::string &bench)
{
    return RunOptions::fromEnv(bench).faults;
}

inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Emit a one-line JSON error report to stderr for a failed or degraded
 * run and return whether the sweep may use the outcome's numbers.
 * Clean runs print nothing.
 */
inline bool
reportRun(const char *figure, const std::string &bench, Technique tech,
          const RunOutcome &out)
{
    if (out.error.ok())
        return true;
    // fault_seed / checkpoint / last_hash give a failed run enough
    // context to reproduce: re-run with the same seed, resume from the
    // named snapshot, and compare hash chains up to last_hash.
    std::fprintf(
        stderr,
        "{\"figure\":\"%s\",\"bench\":\"%s\",\"tech\":\"%s\","
        "\"status\":\"%s\",\"kind\":\"%s\",\"cycle\":%llu,"
        "\"what\":\"%s\",\"fault_seed\":%llu,\"checkpoint\":\"%s\","
        "\"last_hash\":\"%016llx\",\"resumed\":%s}\n",
        figure, jsonEscape(bench).c_str(), techniqueName(tech),
        out.fellBack ? "fallback" : "error",
        runErrorKindName(out.error.kind),
        static_cast<unsigned long long>(out.error.cycle),
        jsonEscape(out.error.what).c_str(),
        static_cast<unsigned long long>(out.faultSeed),
        jsonEscape(out.checkpointId).c_str(),
        static_cast<unsigned long long>(out.lastStateHash),
        out.resumed ? "true" : "false");
    return out.ok();
}

/**
 * Run @p body with top-level FatalError/PanicError isolation: an
 * uncaught simulator error prints a diagnostic (instead of a bare
 * std::terminate abort) and exits non-zero.
 */
inline int
guardedMain(const char *name, const std::function<int()> &body)
{
    try {
        return body();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: user error: %s\n", name, e.what());
    } catch (const PanicError &e) {
        std::fprintf(stderr, "%s: simulator bug: %s\n", name, e.what());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: unexpected error: %s\n", name, e.what());
    }
    return 1;
}

// ----- shared CLI front-end (DESIGN.md §11) -------------------------------

/** Options every figure/table driver accepts via benchMain(). */
struct Cli
{
    /** Smaller sweep for smoke tests (driver-defined meaning). */
    bool quick = false;
    /** Sweep worker threads (0: DACSIM_JOBS / hardware concurrency). */
    int jobs = 0;
    /** Override the driver's JSON output path (empty: its default). */
    std::string jsonPath;
    /** Benchmark abbreviations to run (empty: the driver's full set). */
    std::vector<std::string> only;
    /** Timeline output stem: each selected run writes
     * `<stem>-<bench>-<tech>.timeline.json` and turns on stall
     * attribution (empty: off). */
    std::string timelineStem;
    /** Chrome-trace output stem: each selected run writes a Perfetto-
     * loadable `<stem>-<bench>-<tech>.trace.json` (empty: off). */
    std::string chromeStem;
};

inline void
printUsage(std::FILE *f, const char *name)
{
    std::fprintf(f,
                 "usage: %s [options]\n"
                 "  --quick              smaller sweep (smoke-test mode)\n"
                 "  --jobs N             sweep worker threads (overrides "
                 "DACSIM_JOBS)\n"
                 "  --json PATH          write the figure's JSON here "
                 "instead of the default\n"
                 "  --only A[,B,...]     run only these benchmark "
                 "abbreviations\n"
                 "  --timeline STEM      write "
                 "<STEM>-<bench>-<tech>.timeline.json per run\n"
                 "                       (enables stall attribution; "
                 "DESIGN.md §11)\n"
                 "  --chrome-trace STEM  write "
                 "<STEM>-<bench>-<tech>.trace.json per run\n"
                 "                       (load in Perfetto / "
                 "chrome://tracing)\n"
                 "  --help               this text\n\n%s",
                 name, envHelpText().c_str());
}

/** Split a comma-separated list, dropping empty fields. */
inline std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t sep = s.find(',', pos);
        if (sep == std::string::npos)
            sep = s.size();
        if (sep > pos)
            out.push_back(s.substr(pos, sep - pos));
        pos = sep + 1;
    }
    return out;
}

/**
 * The standard driver entry point: parse the shared flags, apply the
 * --jobs override, and run @p body under guardedMain. Unknown flags
 * print usage and exit 2; --help prints usage plus the DACSIM_* env
 * registry and exits 0. Drivers with genuinely custom interfaces
 * (dacsim_lint, dacsim_bisect) keep their own parsers.
 */
inline int
benchMain(int argc, char **argv, const char *name,
          const std::function<int(const Cli &)> &body)
{
    Cli cli;
    auto value = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s needs a value\n", name, flag);
            printUsage(stderr, name);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--quick") == 0) {
            cli.quick = true;
        } else if (std::strcmp(a, "--jobs") == 0) {
            cli.jobs = std::atoi(value(i, a));
            if (cli.jobs <= 0) {
                std::fprintf(stderr, "%s: --jobs needs a positive count\n",
                             name);
                return 2;
            }
        } else if (std::strcmp(a, "--json") == 0) {
            cli.jsonPath = value(i, a);
        } else if (std::strcmp(a, "--only") == 0) {
            for (std::string &b : splitList(value(i, a)))
                cli.only.push_back(std::move(b));
        } else if (std::strcmp(a, "--timeline") == 0) {
            cli.timelineStem = value(i, a);
        } else if (std::strcmp(a, "--chrome-trace") == 0) {
            cli.chromeStem = value(i, a);
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            printUsage(stdout, name);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown option %s\n", name, a);
            printUsage(stderr, name);
            return 2;
        }
    }
    if (cli.jobs > 0)
        setSweepJobsOverride(cli.jobs);
    return guardedMain(name, [&] { return body(cli); });
}

/** True when --only is empty or names @p bench. */
inline bool
selected(const Cli &cli, const std::string &bench)
{
    if (cli.only.empty())
        return true;
    for (const std::string &o : cli.only)
        if (o == bench)
            return true;
    return false;
}

/** Keep only the benchmarks --only selected (order preserved). */
inline std::vector<std::string>
filterNames(std::vector<std::string> names, const Cli &cli)
{
    if (cli.only.empty())
        return names;
    std::vector<std::string> out;
    for (const std::string &n : names)
        if (selected(cli, n))
            out.push_back(n);
    return out;
}

/** The workloads --only selected, in Table 2 order. */
inline std::vector<Workload>
selectWorkloads(const Cli &cli)
{
    std::vector<Workload> out;
    for (const Workload &w : allWorkloads())
        if (selected(cli, w.name))
            out.push_back(w);
    return out;
}

/**
 * Turn on observability for one sweep run per the CLI: --timeline and
 * --chrome-trace each name an output stem, expanded per (bench, tech)
 * so parallel jobs never share a file. Either flag also enables stall
 * attribution (which disables idle-cycle fast-forward for that run).
 */
inline void
applyObs(RunOptions &opt, const Cli &cli, const std::string &bench,
         Technique tech)
{
    if (cli.timelineStem.empty() && cli.chromeStem.empty())
        return;
    opt.obs.stalls = true;
    if (!cli.timelineStem.empty())
        opt.obs.timelinePath = cli.timelineStem + "-" + bench + "-" +
                               techniqueName(tech) + ".timeline.json";
    if (!cli.chromeStem.empty())
        opt.obs.chromeTracePath = cli.chromeStem + "-" + bench + "-" +
                                  techniqueName(tech) + ".trace.json";
}

} // namespace dacsim::bench

#endif // DACSIM_BENCH_BENCH_UTIL_H
