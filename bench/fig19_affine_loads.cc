/**
 * @file
 * Figure 19 — Percentage of Affine Global and Local Load Requests on
 * DAC over the 18 memory-intensive benchmarks: the fraction of load
 * line transactions issued early by the affine warp / AEU.
 */

#include <cstdio>

#include "bench_util.h"

using namespace dacsim;

namespace
{

int
run(const bench::Cli &cli)
{
    bench::printHeader(
        "Figure 19: Affine Load Requests on DAC (memory-intensive)");
    std::printf("%-5s %10s %12s %9s\n", "bench", "affine", "total",
                "share");

    std::vector<std::string> names =
        bench::filterNames(bench::benchNames(true), cli);
    std::vector<bench::SweepJob> jobs;
    for (const std::string &n : names) {
        bench::SweepJob j;
        j.bench = n;
        j.opt = RunOptions::fromEnv(n);
        j.opt.scale = bench::figureScale;
        j.opt.tech = Technique::Dac;
        jobs.push_back(std::move(j));
    }
    std::vector<RunOutcome> outs = bench::runSweep(jobs);

    std::vector<double> shares;
    for (std::size_t ni = 0; ni < names.size(); ++ni) {
        const std::string &n = names[ni];
        const RunOutcome &r = outs[ni];
        if (!bench::reportRun("fig19", n, Technique::Dac, r))
            continue;
        double share = r.stats.loadRequests
                           ? static_cast<double>(
                                 r.stats.affineLoadRequests) /
                                 static_cast<double>(r.stats.loadRequests)
                           : 0.0;
        std::printf("%-5s %10llu %12llu %8.1f%%\n", n.c_str(),
                    static_cast<unsigned long long>(
                        r.stats.affineLoadRequests),
                    static_cast<unsigned long long>(r.stats.loadRequests),
                    100.0 * share);
        shares.push_back(share);
    }
    double mean = 0;
    for (double s : shares)
        mean += s;
    if (!shares.empty())
        mean /= static_cast<double>(shares.size());
    std::printf("%-5s %32.1f%%  (arithmetic mean)\n", "MEAN",
                100.0 * mean);
    std::printf("(paper: 79.8%% of global/local loads issued by the "
                "affine warp; BFS/BT low, streaming kernels near 100%%)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "fig19_affine_loads", run);
}
