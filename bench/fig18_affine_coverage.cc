/**
 * @file
 * Figure 18 — Affine Instruction Coverage of DAC and CAE over the 11
 * compute-intensive benchmarks: the percentage of baseline warp
 * instructions that each technique handles affinely. For DAC the
 * numerator is the dynamic count of instructions whose static
 * instruction was decoupled or eliminated; for CAE it is the count
 * executed on the affine units.
 */

#include <cstdio>

#include "bench_util.h"

using namespace dacsim;

namespace
{

int
run(const bench::Cli &cli)
{
    bench::printHeader(
        "Figure 18: Affine Instruction Coverage (compute-intensive)");
    std::printf("%-5s %8s %8s\n", "bench", "CAE", "DAC");

    std::vector<std::string> names =
        bench::filterNames(bench::benchNames(false), cli);
    std::vector<bench::SweepJob> jobs;
    for (const std::string &n : names) {
        bench::SweepJob j;
        j.bench = n;
        j.opt = RunOptions::fromEnv(n);
        j.opt.scale = bench::figureScale;
        // Baseline run carries the DAC coverage marks (Fig 18's
        // metric is defined against baseline execution).
        jobs.push_back(j);
        j.opt.tech = Technique::Cae;
        jobs.push_back(std::move(j));
    }
    std::vector<RunOutcome> outs = bench::runSweep(jobs);

    std::vector<double> caeCov, dacCov;
    for (std::size_t ni = 0; ni < names.size(); ++ni) {
        const std::string &n = names[ni];
        const RunOutcome &base = outs[ni * 2];
        const RunOutcome &cae = outs[ni * 2 + 1];
        if (!bench::reportRun("fig18", n, Technique::Baseline, base) ||
            !bench::reportRun("fig18", n, Technique::Cae, cae)) {
            continue;
        }
        double b = static_cast<double>(base.stats.warpInsts);
        double dac =
            static_cast<double>(base.stats.affineCoveredInsts) / b;
        double caeC = static_cast<double>(cae.stats.caeAffineInsts) /
                      static_cast<double>(cae.stats.warpInsts);
        std::printf("%-5s %7.1f%% %7.1f%%\n", n.c_str(), 100.0 * caeC,
                    100.0 * dac);
        caeCov.push_back(caeC);
        dacCov.push_back(dac);
    }
    std::printf("%-5s %7.1f%% %7.1f%%  (geometric mean)\n", "MEAN",
                100.0 * bench::geomean(caeCov),
                100.0 * bench::geomean(dacCov));
    std::printf("(paper: DAC 34%%, CAE 25%%)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "fig18_affine_coverage", run);
}
