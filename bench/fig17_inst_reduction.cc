/**
 * @file
 * Figure 17 — Number of Warp Instructions Executed by DAC Normalized
 * to the Baseline GPU, split into the non-affine and affine streams,
 * plus the Section 5.3 headline numbers (26% average reduction, ~4.6%
 * affine-stream share, one affine instruction replacing ~9 baseline
 * instructions).
 */

#include <cstdio>

#include "bench_util.h"

using namespace dacsim;

namespace
{

int
run(const bench::Cli &cli)
{
    bench::printHeader(
        "Figure 17: DAC Warp Instructions Normalized to Baseline");
    std::printf("%-5s %10s %10s %10s %9s\n", "bench", "non-affine",
                "affine", "total", "affine%");

    const std::vector<Workload> works = bench::selectWorkloads(cli);
    std::vector<bench::SweepJob> jobs;
    for (const Workload &w : works) {
        bench::SweepJob j;
        j.bench = w.name;
        j.opt = RunOptions::fromEnv(w.name);
        j.opt.scale = bench::figureScale;
        jobs.push_back(j);
        j.opt.tech = Technique::Dac;
        jobs.push_back(std::move(j));
    }
    std::vector<RunOutcome> outs = bench::runSweep(jobs);

    std::vector<double> totals, shares, replaced;
    for (std::size_t wi = 0; wi < works.size(); ++wi) {
        const Workload &w = works[wi];
        const RunOutcome &base = outs[wi * 2];
        const RunOutcome &dac = outs[wi * 2 + 1];
        if (!bench::reportRun("fig17", w.name, Technique::Baseline,
                              base) ||
            !bench::reportRun("fig17", w.name, Technique::Dac, dac)) {
            continue;
        }
        double b = static_cast<double>(base.stats.warpInsts);
        double na = static_cast<double>(dac.stats.warpInsts) / b;
        double aff = static_cast<double>(dac.stats.affineWarpInsts) / b;
        double share =
            static_cast<double>(dac.stats.affineWarpInsts) /
            static_cast<double>(dac.stats.totalWarpInsts());
        std::printf("%-5s %9.3fx %9.3fx %9.3fx %8.1f%%\n",
                    w.name.c_str(), na, aff, na + aff, 100.0 * share);
        totals.push_back(na + aff);
        shares.push_back(share);
        if (dac.stats.affineWarpInsts > 0) {
            // How many baseline instructions one affine inst replaced.
            double removed = b - static_cast<double>(dac.stats.warpInsts);
            if (removed > 0)
                replaced.push_back(
                    removed /
                    static_cast<double>(dac.stats.affineWarpInsts));
        }
    }
    double meanTotal = bench::geomean(totals);
    std::printf("\nMEAN normalized instruction count: %.3fx -> "
                "%.1f%% reduction (paper: 26.0%%)\n",
                meanTotal, 100.0 * (1.0 - meanTotal));
    std::printf("MEAN affine-stream share: %.1f%% of DAC instructions "
                "(paper: 4.6%%)\n",
                100.0 * bench::geomean(shares));
    std::printf("One affine instruction replaces %.1f baseline "
                "instructions on average (paper: ~9)\n",
                bench::geomean(replaced));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "fig17_inst_reduction", run);
}
