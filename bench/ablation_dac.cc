/**
 * @file
 * Ablation study of DAC's design choices (beyond the paper's own
 * evaluation): queue provisioning (ATQ/PWAQ depth), expansion-unit
 * throughput, the early-fetch line cap, the divergent-condition
 * budget, and the MSHR pool that bounds the affine warp's run-ahead.
 *
 * Run over three representative benchmarks: SP (latency-bound
 * streaming — run-ahead dominated), HS (compute-bound with divergent
 * clamps), FFT (divergent tuples + mod addressing).
 */

#include <cstdio>
#include <functional>

#include "bench_util.h"

using namespace dacsim;

namespace
{

const char *benches[] = {"SP", "HS", "FFT"};
constexpr std::size_t benchCount = 3;

/** One ablation row: a label and a config tweak applied to all runs. */
struct Row
{
    const char *label;
    std::function<void(RunOptions &)> tweak;
};

double
dacSpeedup(const std::string &name, const RunOutcome &base,
           const RunOutcome &dac)
{
    if (!bench::reportRun("ablation", name, Technique::Baseline, base) ||
        !bench::reportRun("ablation", name, Technique::Dac, dac))
        return 0.0; // rendered as 0.00x; details already on stderr
    require(dac.checksums == base.checksums, "ablation broke ", name);
    return static_cast<double>(base.stats.cycles) /
           static_cast<double>(dac.stats.cycles);
}

int
run(const bench::Cli &cli)
{
    bench::printHeader("DAC design-choice ablations (DAC speedup)");
    std::printf("%-34s %8s %8s %8s\n", "configuration", "SP", "HS",
                "FFT");

    const std::vector<Row> rows = {
        {"default (Table 1)", [](RunOptions &) {}},

        // Queue provisioning: the run-ahead window.
        {"ATQ 6 entries (was 24)",
         [](RunOptions &o) { o.dac.atqEntries = 6; }},
        {"PWAQ/PWPQ 48 entries (was 192)",
         [](RunOptions &o) {
             o.dac.pwaqEntries = 48;
             o.dac.pwpqEntries = 48;
         }},
        {"PWAQ/PWPQ 768 entries (4x)",
         [](RunOptions &o) {
             o.dac.pwaqEntries = 768;
             o.dac.pwpqEntries = 768;
         }},

        // Expansion throughput (the paper adds 2 ALUs).
        {"1 expansion/cycle (was 2)",
         [](RunOptions &o) { o.dac.expansionsPerCycle = 1; }},
        {"4 expansions/cycle",
         [](RunOptions &o) { o.dac.expansionsPerCycle = 4; }},

        // Divergence support (Section 4.6): without divergent tuples
        // the clamped/selected addresses of HS and FFT cannot decouple.
        {"no divergent conditions",
         [](RunOptions &o) { o.dac.maxDivergentConditions = 0; }},
        {"1 divergent condition",
         [](RunOptions &o) { o.dac.maxDivergentConditions = 1; }},

        // Run-ahead depth is ultimately MSHR-bound.
        {"16 MSHRs (was 32)",
         [](RunOptions &o) { o.gpu.l1.mshrs = 16; }},
        {"64 MSHRs", [](RunOptions &o) { o.gpu.l1.mshrs = 64; }},
    };

    std::vector<bench::SweepJob> jobs;
    for (const Row &r : rows) {
        for (const char *b : benches) {
            bench::SweepJob j;
            j.bench = b;
            j.opt = RunOptions::fromEnv(b);
            j.opt.scale = 0.5;
            r.tweak(j.opt);
            jobs.push_back(j);
            j.opt.tech = Technique::Dac;
            jobs.push_back(std::move(j));
        }
    }
    std::vector<RunOutcome> outs = bench::runSweep(jobs);

    for (std::size_t ri = 0; ri < rows.size(); ++ri) {
        std::printf("%-34s", rows[ri].label);
        for (std::size_t bi = 0; bi < benchCount; ++bi) {
            std::size_t at = (ri * benchCount + bi) * 2;
            std::printf(" %7.2fx",
                        dacSpeedup(benches[bi], outs[at], outs[at + 1]));
        }
        std::printf("\n");
    }

    std::printf("\nExpected shape: queue/MSHR cuts hurt SP (run-ahead "
                "bound), divergence cuts hurt HS and FFT (their "
                "addresses need 1-2 conditions), expansion throughput "
                "matters little beyond 2/cycle.\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "ablation_dac",
                            [](const bench::Cli &cli) { return run(cli); });
}
