/**
 * @file
 * Figure 20 — MTA Prefetcher Coverage over the 18 memory-intensive
 * benchmarks: the fraction of would-be L2/DRAM accesses serviced from
 * the prefetch buffer (prefetch hits over prefetch hits + remaining
 * demand L1 misses).
 */

#include <cstdio>

#include "bench_util.h"

using namespace dacsim;

namespace
{

int
run(const bench::Cli &cli)
{
    bench::printHeader(
        "Figure 20: MTA Prefetcher Coverage (memory-intensive)");
    std::printf("%-5s %10s %10s %10s %9s\n", "bench", "pf-hits",
                "l1-misses", "issued", "coverage");

    std::vector<std::string> names =
        bench::filterNames(bench::benchNames(true), cli);
    std::vector<bench::SweepJob> jobs;
    for (const std::string &n : names) {
        bench::SweepJob j;
        j.bench = n;
        j.opt = RunOptions::fromEnv(n);
        j.opt.scale = bench::figureScale;
        j.opt.tech = Technique::Mta;
        jobs.push_back(std::move(j));
    }
    std::vector<RunOutcome> outs = bench::runSweep(jobs);

    std::vector<double> covs;
    for (std::size_t ni = 0; ni < names.size(); ++ni) {
        const std::string &n = names[ni];
        const RunOutcome &r = outs[ni];
        if (!bench::reportRun("fig20", n, Technique::Mta, r))
            continue;
        double denom = static_cast<double>(r.stats.prefetchHits +
                                           r.stats.l1Misses);
        double cov = denom > 0 ? static_cast<double>(r.stats.prefetchHits) /
                                     denom
                               : 0.0;
        std::printf("%-5s %10llu %10llu %10llu %8.1f%%\n", n.c_str(),
                    static_cast<unsigned long long>(r.stats.prefetchHits),
                    static_cast<unsigned long long>(r.stats.l1Misses),
                    static_cast<unsigned long long>(
                        r.stats.prefetchesIssued),
                    100.0 * cov);
        covs.push_back(cov);
    }
    double mean = 0;
    for (double c : covs)
        mean += c;
    if (!covs.empty())
        mean /= static_cast<double>(covs.size());
    std::printf("%-5s %42.1f%%  (arithmetic mean)\n", "MEAN",
                100.0 * mean);
    std::printf("(paper: high coverage on regular streams, throttled "
                "or useless on irregular ones)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "fig20_mta_coverage", run);
}
