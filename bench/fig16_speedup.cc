/**
 * @file
 * Figure 16 — Speedup of CAE, MTA, and DAC over the baseline GTX 480,
 * split into the paper's two panels (memory-intensive, compute-
 * intensive) with per-panel and global geometric means.
 *
 * Paper reference points: DAC global 1.407x; compute panel DAC 1.34x
 * vs CAE 1.15x (their implementation 1.11x in the text); memory panel
 * DAC 1.44x vs MTA 1.16x.
 *
 * All (benchmark, technique) runs execute concurrently on DACSIM_JOBS
 * workers; printing and error reporting happen afterwards on the main
 * thread, in the same deterministic order a serial sweep would use.
 * The results are also written to BENCH_fig16.json — every number in
 * it derives only from simulated state, so the file is byte-identical
 * across reruns.
 *
 * The sweep is crash-isolated and resumable: a run that fails (or
 * degrades to baseline under fault injection) is reported as a JSON
 * error line on stderr and excluded from the means, and with
 * DACSIM_CHECKPOINT_DIR set a killed sweep restarts from its journal
 * (see DESIGN.md §9), reproducing BENCH_fig16.json byte-identically.
 */

#include <cstdio>
#include <cstring>
#include <map>

#include "bench_util.h"

using namespace dacsim;

namespace
{

constexpr Technique techOrder[] = {Technique::Baseline, Technique::Cae,
                                   Technique::Mta, Technique::Dac};
constexpr std::size_t techCount = 4;

/** One benchmark's speedups; a missing technique key means it failed. */
struct Row
{
    std::string bench;
    bool baseOk = false;
    std::map<Technique, double> speed;
};

std::vector<double>
collect(const std::vector<Row> &rows, Technique t)
{
    std::vector<double> v;
    for (const Row &r : rows)
        if (r.speed.count(t))
            v.push_back(r.speed.at(t));
    return v;
}

std::vector<Row>
panel(const char *title, const std::vector<std::string> &names,
      const std::vector<RunOutcome> &outs, std::size_t first)
{
    std::printf("\n--- %s ---\n", title);
    std::printf("%-5s %8s %8s %8s\n", "bench", "CAE", "MTA", "DAC");
    std::vector<Row> rows;
    for (std::size_t ni = 0; ni < names.size(); ++ni) {
        Row row;
        row.bench = names[ni];
        const RunOutcome *row0 = &outs[first + ni * techCount];
        const RunOutcome &base = row0[0];
        if (!bench::reportRun("fig16", row.bench, Technique::Baseline,
                              base)) {
            std::printf("%-5s %8s %8s %8s  (baseline failed: %s)\n",
                        row.bench.c_str(), "-", "-", "-",
                        runErrorKindName(base.error.kind));
            rows.push_back(std::move(row));
            continue;
        }
        row.baseOk = true;
        for (std::size_t ti = 1; ti < techCount; ++ti) {
            Technique t = techOrder[ti];
            const RunOutcome &r = row0[ti];
            if (!bench::reportRun("fig16", row.bench, t, r))
                continue; // structured error already emitted
            require(r.checksums == base.checksums,
                    "result mismatch on ", row.bench);
            row.speed[t] = static_cast<double>(base.stats.cycles) /
                           static_cast<double>(r.stats.cycles);
        }
        auto cell = [&](Technique t) {
            return row.speed.count(t) ? row.speed[t] : 0.0;
        };
        std::printf("%-5s %7.2fx %7.2fx %7.2fx\n", row.bench.c_str(),
                    cell(Technique::Cae), cell(Technique::Mta),
                    cell(Technique::Dac));
        rows.push_back(std::move(row));
    }
    // Failed techniques are excluded from the means rather than
    // polluting them with zeros.
    std::printf("%-5s %7.2fx %7.2fx %7.2fx  (geometric mean)\n", "MEAN",
                bench::geomean(collect(rows, Technique::Cae)),
                bench::geomean(collect(rows, Technique::Mta)),
                bench::geomean(collect(rows, Technique::Dac)));
    return rows;
}

void
writeJson(const char *path, bool quick, double scale,
          const std::vector<Row> &mem, const std::vector<Row> &comp)
{
    std::FILE *f = std::fopen(path, "w");
    require(f != nullptr, "cannot write ", path);
    auto emitPanel = [&](const char *key, const std::vector<Row> &rows,
                         const char *trail) {
        std::fprintf(f, "    \"%s\": {\n      \"rows\": [\n", key);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            auto cell = [&](Technique t) {
                return r.speed.count(t) ? r.speed.at(t) : 0.0;
            };
            std::fprintf(f,
                         "        {\"bench\": \"%s\", \"ok\": %s, "
                         "\"cae\": %.6f, \"mta\": %.6f, \"dac\": "
                         "%.6f}%s\n",
                         bench::jsonEscape(r.bench).c_str(),
                         r.baseOk ? "true" : "false",
                         cell(Technique::Cae), cell(Technique::Mta),
                         cell(Technique::Dac),
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f,
                     "      ],\n      \"geomean\": {\"cae\": %.6f, "
                     "\"mta\": %.6f, \"dac\": %.6f}\n    }%s\n",
                     bench::geomean(collect(rows, Technique::Cae)),
                     bench::geomean(collect(rows, Technique::Mta)),
                     bench::geomean(collect(rows, Technique::Dac)),
                     trail);
    };
    std::vector<Row> all = mem;
    all.insert(all.end(), comp.begin(), comp.end());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fig16\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"scale\": %.3f,\n", scale);
    std::fprintf(f, "  \"panels\": {\n");
    emitPanel("memory_intensive", mem, ",");
    emitPanel("compute_intensive", comp, "");
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"global_geomean\": {\"cae\": %.6f, \"mta\": %.6f, "
                 "\"dac\": %.6f}\n",
                 bench::geomean(collect(all, Technique::Cae)),
                 bench::geomean(collect(all, Technique::Mta)),
                 bench::geomean(collect(all, Technique::Dac)));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

int
run(const bench::Cli &cli)
{
    bench::printHeader(
        "Figure 16: Speedup of CAE, MTA, and DAC over the baseline");

    const bool quick = cli.quick;
    std::vector<std::string> memNames = bench::benchNames(true);
    std::vector<std::string> compNames = bench::benchNames(false);
    double scale = quick ? 0.25 : bench::figureScale;
    if (quick) {
        // First two of each category, in Table 2 order: deterministic
        // and cheap, for the scripts/check.sh kill/restart smoke.
        memNames.resize(std::min<std::size_t>(2, memNames.size()));
        compNames.resize(std::min<std::size_t>(2, compNames.size()));
    }
    memNames = bench::filterNames(std::move(memNames), cli);
    compNames = bench::filterNames(std::move(compNames), cli);
    std::vector<std::string> all = memNames;
    all.insert(all.end(), compNames.begin(), compNames.end());

    std::vector<bench::SweepJob> jobs;
    for (const std::string &n : all) {
        for (Technique t : techOrder) {
            bench::SweepJob j;
            j.bench = n;
            j.opt = RunOptions::fromEnv(n);
            j.opt.tech = t;
            j.opt.scale = scale;
            bench::applyObs(j.opt, cli, n, t);
            jobs.push_back(std::move(j));
        }
    }
    std::vector<RunOutcome> outs = bench::runSweep(jobs, "fig16");

    std::vector<Row> mem =
        panel("(a) Memory Intensive Benchmarks", memNames, outs, 0);
    std::vector<Row> comp =
        panel("(b) Compute Intensive Benchmarks", compNames, outs,
              memNames.size() * techCount);
    std::vector<Row> allRows = mem;
    allRows.insert(allRows.end(), comp.begin(), comp.end());
    std::printf("\nGLOBAL geometric means: CAE %.3fx  MTA %.3fx  "
                "DAC %.3fx\n",
                bench::geomean(collect(allRows, Technique::Cae)),
                bench::geomean(collect(allRows, Technique::Mta)),
                bench::geomean(collect(allRows, Technique::Dac)));
    std::printf("(paper: DAC 1.407x overall; compute DAC 1.34x / CAE "
                "1.11x; memory DAC 1.44x / MTA 1.16x)\n");
    writeJson(cli.jsonPath.empty() ? "BENCH_fig16.json"
                                   : cli.jsonPath.c_str(),
              quick, scale, mem, comp);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "fig16_speedup", run);
}
