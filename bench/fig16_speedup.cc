/**
 * @file
 * Figure 16 — Speedup of CAE, MTA, and DAC over the baseline GTX 480,
 * split into the paper's two panels (memory-intensive, compute-
 * intensive) with per-panel and global geometric means.
 *
 * Paper reference points: DAC global 1.407x; compute panel DAC 1.34x
 * vs CAE 1.15x (their implementation 1.11x in the text); memory panel
 * DAC 1.44x vs MTA 1.16x.
 *
 * The sweep is crash-isolated: a run that fails (or degrades to
 * baseline under fault injection) is reported as a JSON error line on
 * stderr and excluded from the means; the remaining benchmarks still
 * complete.
 */

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace dacsim;

namespace
{

void
panel(const char *title, const std::vector<std::string> &names,
      std::map<std::string, std::map<Technique, double>> &table,
      std::vector<double> (&global)[3])
{
    std::printf("\n--- %s ---\n", title);
    std::printf("%-5s %8s %8s %8s\n", "bench", "CAE", "MTA", "DAC");
    std::vector<double> cae, mta, dac;
    for (const std::string &n : names) {
        RunOptions opt;
        opt.scale = bench::figureScale;
        opt.faults = bench::faultPlanFor(n);
        RunOutcome base = runWorkload(n, opt);
        if (!bench::reportRun("fig16", n, Technique::Baseline, base)) {
            std::printf("%-5s %8s %8s %8s  (baseline failed: %s)\n",
                        n.c_str(), "-", "-", "-",
                        runErrorKindName(base.error.kind));
            continue;
        }
        std::map<Technique, double> row;
        for (Technique t :
             {Technique::Cae, Technique::Mta, Technique::Dac}) {
            opt.tech = t;
            RunOutcome r = runWorkload(n, opt);
            if (!bench::reportRun("fig16", n, t, r))
                continue; // structured error already emitted
            require(r.checksums == base.checksums,
                    "result mismatch on ", n);
            row[t] = static_cast<double>(base.stats.cycles) /
                     static_cast<double>(r.stats.cycles);
        }
        auto cell = [&](Technique t) {
            return row.count(t) ? row[t] : 0.0;
        };
        std::printf("%-5s %7.2fx %7.2fx %7.2fx\n", n.c_str(),
                    cell(Technique::Cae), cell(Technique::Mta),
                    cell(Technique::Dac));
        // Failed techniques are excluded from the means rather than
        // polluting them with zeros.
        if (row.count(Technique::Cae))
            cae.push_back(row[Technique::Cae]);
        if (row.count(Technique::Mta))
            mta.push_back(row[Technique::Mta]);
        if (row.count(Technique::Dac))
            dac.push_back(row[Technique::Dac]);
        table[n] = row;
    }
    std::printf("%-5s %7.2fx %7.2fx %7.2fx  (geometric mean)\n", "MEAN",
                bench::geomean(cae), bench::geomean(mta),
                bench::geomean(dac));
    global[0].insert(global[0].end(), cae.begin(), cae.end());
    global[1].insert(global[1].end(), mta.begin(), mta.end());
    global[2].insert(global[2].end(), dac.begin(), dac.end());
}

int
run()
{
    bench::printHeader(
        "Figure 16: Speedup of CAE, MTA, and DAC over the baseline");
    std::map<std::string, std::map<Technique, double>> table;
    std::vector<double> global[3];
    panel("(a) Memory Intensive Benchmarks", bench::benchNames(true),
          table, global);
    panel("(b) Compute Intensive Benchmarks", bench::benchNames(false),
          table, global);
    std::printf("\nGLOBAL geometric means: CAE %.3fx  MTA %.3fx  "
                "DAC %.3fx\n",
                bench::geomean(global[0]), bench::geomean(global[1]),
                bench::geomean(global[2]));
    std::printf("(paper: DAC 1.407x overall; compute DAC 1.34x / CAE "
                "1.11x; memory DAC 1.44x / MTA 1.16x)\n");
    return 0;
}

} // namespace

int
main()
{
    return bench::guardedMain("fig16_speedup", run);
}
