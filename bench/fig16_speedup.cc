/**
 * @file
 * Figure 16 — Speedup of CAE, MTA, and DAC over the baseline GTX 480,
 * split into the paper's two panels (memory-intensive, compute-
 * intensive) with per-panel and global geometric means.
 *
 * Paper reference points: DAC global 1.407x; compute panel DAC 1.34x
 * vs CAE 1.15x (their implementation 1.11x in the text); memory panel
 * DAC 1.44x vs MTA 1.16x.
 *
 * All (benchmark, technique) runs execute concurrently on DACSIM_JOBS
 * workers; printing and error reporting happen afterwards on the main
 * thread, in the same deterministic order a serial sweep would use.
 *
 * The sweep is crash-isolated: a run that fails (or degrades to
 * baseline under fault injection) is reported as a JSON error line on
 * stderr and excluded from the means; the remaining benchmarks still
 * complete.
 */

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace dacsim;

namespace
{

constexpr Technique techOrder[] = {Technique::Baseline, Technique::Cae,
                                   Technique::Mta, Technique::Dac};
constexpr std::size_t techCount = 4;

void
panel(const char *title, const std::vector<std::string> &names,
      const std::vector<RunOutcome> &outs, std::size_t first,
      std::vector<double> (&global)[3])
{
    std::printf("\n--- %s ---\n", title);
    std::printf("%-5s %8s %8s %8s\n", "bench", "CAE", "MTA", "DAC");
    std::vector<double> cae, mta, dac;
    for (std::size_t ni = 0; ni < names.size(); ++ni) {
        const std::string &n = names[ni];
        const RunOutcome *row0 = &outs[first + ni * techCount];
        const RunOutcome &base = row0[0];
        if (!bench::reportRun("fig16", n, Technique::Baseline, base)) {
            std::printf("%-5s %8s %8s %8s  (baseline failed: %s)\n",
                        n.c_str(), "-", "-", "-",
                        runErrorKindName(base.error.kind));
            continue;
        }
        std::map<Technique, double> row;
        for (std::size_t ti = 1; ti < techCount; ++ti) {
            Technique t = techOrder[ti];
            const RunOutcome &r = row0[ti];
            if (!bench::reportRun("fig16", n, t, r))
                continue; // structured error already emitted
            require(r.checksums == base.checksums,
                    "result mismatch on ", n);
            row[t] = static_cast<double>(base.stats.cycles) /
                     static_cast<double>(r.stats.cycles);
        }
        auto cell = [&](Technique t) {
            return row.count(t) ? row[t] : 0.0;
        };
        std::printf("%-5s %7.2fx %7.2fx %7.2fx\n", n.c_str(),
                    cell(Technique::Cae), cell(Technique::Mta),
                    cell(Technique::Dac));
        // Failed techniques are excluded from the means rather than
        // polluting them with zeros.
        if (row.count(Technique::Cae))
            cae.push_back(row[Technique::Cae]);
        if (row.count(Technique::Mta))
            mta.push_back(row[Technique::Mta]);
        if (row.count(Technique::Dac))
            dac.push_back(row[Technique::Dac]);
    }
    std::printf("%-5s %7.2fx %7.2fx %7.2fx  (geometric mean)\n", "MEAN",
                bench::geomean(cae), bench::geomean(mta),
                bench::geomean(dac));
    global[0].insert(global[0].end(), cae.begin(), cae.end());
    global[1].insert(global[1].end(), mta.begin(), mta.end());
    global[2].insert(global[2].end(), dac.begin(), dac.end());
}

int
run()
{
    bench::printHeader(
        "Figure 16: Speedup of CAE, MTA, and DAC over the baseline");

    std::vector<std::string> memNames = bench::benchNames(true);
    std::vector<std::string> compNames = bench::benchNames(false);
    std::vector<std::string> all = memNames;
    all.insert(all.end(), compNames.begin(), compNames.end());

    std::vector<bench::SweepJob> jobs;
    for (const std::string &n : all) {
        for (Technique t : techOrder) {
            bench::SweepJob j;
            j.bench = n;
            j.opt.tech = t;
            j.opt.scale = bench::figureScale;
            j.opt.faults = bench::faultPlanFor(n);
            jobs.push_back(std::move(j));
        }
    }
    std::vector<RunOutcome> outs = bench::runSweep(jobs);

    std::vector<double> global[3];
    panel("(a) Memory Intensive Benchmarks", memNames, outs, 0, global);
    panel("(b) Compute Intensive Benchmarks", compNames, outs,
          memNames.size() * techCount, global);
    std::printf("\nGLOBAL geometric means: CAE %.3fx  MTA %.3fx  "
                "DAC %.3fx\n",
                bench::geomean(global[0]), bench::geomean(global[1]),
                bench::geomean(global[2]));
    std::printf("(paper: DAC 1.407x overall; compute DAC 1.34x / CAE "
                "1.11x; memory DAC 1.44x / MTA 1.16x)\n");
    return 0;
}

} // namespace

int
main()
{
    return bench::guardedMain("fig16_speedup", run);
}
