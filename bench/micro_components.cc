/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * affine tuple algebra, divergent-value expansion, the coalescer, the
 * tag array, the assembler/compiler front end, and a whole small
 * kernel simulation per machine model. These track the simulator's
 * own performance (host wall-clock), not modelled GPU time.
 */

#include <benchmark/benchmark.h>

#include "compiler/cfg.h"
#include "compiler/decoupler.h"
#include "dac/affine_value.h"
#include "harness/runner.h"
#include "isa/assembler.h"
#include "mem/coalescer.h"
#include "mem/tag_array.h"

using namespace dacsim;

namespace
{

const char *loopKernel = R"(
.kernel k
.param A B dim num
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $A, r2;
    add r4, $B, r2;
    mov r5, 0;
LOOP:
    ld.global.u32 r6, [r3];
    add r7, r6, 1;
    st.global.u32 [r4], r7;
    add r5, r5, 1;
    mul r8, $num, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, $dim, r5;
    @p0 bra LOOP;
    exit;
)";

void
BM_TupleAdd(benchmark::State &state)
{
    AffineTuple a;
    a.base = 0x100;
    a.tidOff[0] = 4;
    AffineTuple b = AffineTuple::scalar(0x200);
    for (auto _ : state)
        benchmark::DoNotOptimize(affineAlu(Opcode::Add, a, b));
}
BENCHMARK(BM_TupleAdd);

void
BM_TupleEval(benchmark::State &state)
{
    AffineTuple a;
    a.base = 0x100;
    a.tidOff[0] = 4;
    a.ctaOff[0] = 512;
    Idx3 tid{17, 0, 0}, cta{3, 0, 0};
    for (auto _ : state)
        benchmark::DoNotOptimize(a.eval(tid, cta));
}
BENCHMARK(BM_TupleEval);

void
BM_DivergentValueApply(benchmark::State &state)
{
    MaskSet full = {fullMask, fullMask, fullMask, fullMask};
    AffineValue a = AffineValue::uniform(AffineTuple::scalar(1));
    a.overlay(AffineValue::uniform(AffineTuple::scalar(2)),
              {0xffff, 0, 0xffff, 0}, full);
    AffineValue b = AffineValue::uniform(AffineTuple::tid(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            AffineValue::apply(Opcode::Add, a, b, {}, full));
    }
}
BENCHMARK(BM_DivergentValueApply);

void
BM_CoalesceUnitStride(benchmark::State &state)
{
    std::array<Addr, warpSize> addrs{};
    for (int i = 0; i < warpSize; ++i)
        addrs[static_cast<std::size_t>(i)] = 0x1000 + 4u * i;
    for (auto _ : state)
        benchmark::DoNotOptimize(coalesce(addrs, fullMask, 4));
}
BENCHMARK(BM_CoalesceUnitStride);

void
BM_CoalesceScattered(benchmark::State &state)
{
    std::array<Addr, warpSize> addrs{};
    for (int i = 0; i < warpSize; ++i)
        addrs[static_cast<std::size_t>(i)] = static_cast<Addr>(i) * 4096;
    for (auto _ : state)
        benchmark::DoNotOptimize(coalesce(addrs, fullMask, 4));
}
BENCHMARK(BM_CoalesceScattered);

void
BM_TagArrayAccess(benchmark::State &state)
{
    GpuConfig cfg;
    TagArray t(cfg.l1);
    for (int i = 0; i < 256; ++i)
        t.fill(static_cast<Addr>(i) * 128);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.access(a));
        a = (a + 128) % (256 * 128);
    }
}
BENCHMARK(BM_TagArrayAccess);

void
BM_Assemble(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(assemble(loopKernel));
}
BENCHMARK(BM_Assemble);

void
BM_Decouple(benchmark::State &state)
{
    Kernel k = assemble(loopKernel);
    analyzeControlFlow(k);
    for (auto _ : state)
        benchmark::DoNotOptimize(decouple(k, DacConfig{}));
}
BENCHMARK(BM_Decouple);

void
BM_SimulateKernel(benchmark::State &state)
{
    Technique tech = static_cast<Technique>(state.range(0));
    for (auto _ : state) {
        RunOptions opt;
        opt.tech = tech;
        opt.scale = 0.05;
        RunOutcome r = runWorkload("SP", opt);
        benchmark::DoNotOptimize(r.stats.cycles);
    }
    state.SetLabel(techniqueName(tech));
}
BENCHMARK(BM_SimulateKernel)
    ->Arg(static_cast<int>(Technique::Baseline))
    ->Arg(static_cast<int>(Technique::Cae))
    ->Arg(static_cast<int>(Technique::Mta))
    ->Arg(static_cast<int>(Technique::Dac))
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
