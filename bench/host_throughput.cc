/**
 * @file
 * Host (simulator) throughput benchmark — tracks how fast dacsim
 * itself runs, as opposed to what it simulates. Every workload ×
 * technique pair is timed twice, once under the reference stepped
 * core and once under the event core (DESIGN.md §13), and reports
 * simulated kilo-cycles per wall-clock second and warp-instructions
 * per second per category for both, plus the resulting speedup. A
 * separate A/B measures the older idle-cycle fast-forward core on a
 * memory-intensive workload (whose long idle windows are exactly what
 * fast-forward elides).
 *
 * Every pair is checked to be simulation-identical: the full RunStats
 * and output checksums must match across cores, so a regression in
 * the exactness of either optimization fails the benchmark rather
 * than silently skewing results.
 *
 * Runs execute serially so per-run wall times are undistorted; the
 * DACSIM_JOBS setting is recorded as metadata only. Results are
 * written to BENCH_host_throughput.json in the working directory for
 * tracking across commits (scripts/check.sh validates the file).
 *
 * --quick: two workloads per category at reduced scale, for CI smoke.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace dacsim;

namespace
{

double
now()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Per-category aggregate of the stepped-vs-event A/B. Cycle and
 * instruction counts are core-independent (the pairs are checked
 * bit-identical), so one set of simulated totals serves both
 * throughput figures.
 */
struct CategoryResult
{
    int runs = 0; ///< pairs (each ran once per core)
    double steppedSeconds = 0.0;
    double eventSeconds = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t warpInsts = 0;

    double kcycles(double seconds) const
    {
        return seconds > 0 ? static_cast<double>(cycles) / seconds / 1e3
                           : 0.0;
    }
    double winsts(double seconds) const
    {
        return seconds > 0 ? static_cast<double>(warpInsts) / seconds
                           : 0.0;
    }
    double speedup() const
    {
        return eventSeconds > 0 ? steppedSeconds / eventSeconds : 0.0;
    }
};

/**
 * Baseline + DAC per workload, each run under the stepped core and
 * again under the event core; requires bit-identical simulated stats
 * and output checksums across each pair.
 */
CategoryResult
timeCategory(const char *tag, const std::vector<std::string> &names,
             double scale)
{
    CategoryResult res;
    for (const std::string &n : names) {
        for (Technique t : {Technique::Baseline, Technique::Dac}) {
            RunOptions opt;
            opt.scale = scale;
            opt.tech = t;

            opt.gpu.simCore = SimCore::Stepped;
            double t0 = now();
            RunOutcome stepped = runWorkload(n, opt);
            double steppedSec = now() - t0;
            if (!bench::reportRun("host_throughput", n, t, stepped))
                continue;

            opt.gpu.simCore = SimCore::Event;
            t0 = now();
            RunOutcome event = runWorkload(n, opt);
            double eventSec = now() - t0;
            require(event.ok(), "event-core run failed on ", n);
            require(stepped.stats == event.stats,
                    "event core changed simulated stats on ", n);
            require(stepped.checksums == event.checksums,
                    "event core changed outputs on ", n);

            ++res.runs;
            res.steppedSeconds += steppedSec;
            res.eventSeconds += eventSec;
            res.cycles += stepped.stats.cycles;
            res.warpInsts += stepped.stats.totalWarpInsts();
        }
    }
    std::printf("%-18s %3d pairs  stepped %7.2fs %9.0f kcyc/s  "
                "event %7.2fs %9.0f kcyc/s  -> %.2fx\n",
                tag, res.runs, res.steppedSeconds,
                res.kcycles(res.steppedSeconds), res.eventSeconds,
                res.kcycles(res.eventSeconds), res.speedup());
    return res;
}

struct FastForwardAb
{
    std::string bench;
    int runs = 0;
    double secondsOff = 0.0;
    double secondsOn = 0.0;

    double speedup() const
    {
        return secondsOn > 0 ? secondsOff / secondsOn : 0.0;
    }
};

/**
 * Every memory-intensive workload under the stepped core then the
 * fast-forward core; requires bit-identical simulated stats and
 * output checksums across each pair. Aggregated over the whole
 * category so the wall-time delta is well above timer noise (a single
 * workload runs for only a fraction of a second at paper scale).
 *
 * The A/B runs at reduced scale: fast-forward elides whole-GPU idle
 * windows, which exist when occupancy is low (small grids, kernel
 * tails). At full paper scale 720 resident warps keep some scheduler
 * busy nearly every cycle, so there is little to skip and the
 * measurement would only show timer noise.
 */
FastForwardAb
fastForwardAb(const std::vector<std::string> &benches, double scale)
{
    FastForwardAb ab;
    ab.bench = "memory-intensive (all)";
    RunOptions opt;
    opt.scale = scale;

    for (const std::string &bench : benches) {
        opt.gpu.simCore = SimCore::Stepped;
        double t0 = now();
        RunOutcome off = runWorkload(bench, opt);
        double offSec = now() - t0;

        opt.gpu.simCore = SimCore::FastForward;
        t0 = now();
        RunOutcome on = runWorkload(bench, opt);
        double onSec = now() - t0;

        require(off.error.ok() && on.error.ok(),
                "fast-forward A/B run failed on ", bench);
        require(off.stats == on.stats,
                "fast-forward changed simulated stats on ", bench);
        require(off.checksums == on.checksums,
                "fast-forward changed outputs on ", bench);
        std::printf("%-18s ff-off %6.2fs  ff-on %6.2fs  -> %.2fx "
                    "(stats bit-identical)\n",
                    bench.c_str(), offSec, onSec,
                    onSec > 0 ? offSec / onSec : 0.0);
        ++ab.runs;
        ab.secondsOff += offSec;
        ab.secondsOn += onSec;
    }
    std::printf("%-18s ff-off %6.2fs  ff-on %6.2fs  -> %.2fx\n",
                "total", ab.secondsOff, ab.secondsOn, ab.speedup());
    return ab;
}

void
writeJson(const char *path, bool quick, double scale,
          const CategoryResult &mem, const CategoryResult &comp,
          const FastForwardAb &ab)
{
    std::FILE *f = std::fopen(path, "w");
    require(f != nullptr, "cannot write ", path);
    // The headline kcycles_per_sec / winsts_per_sec keys carry the
    // event-core (default) numbers; stepped figures ride alongside so
    // the speedup is reconstructible from the file.
    auto cat = [&](const char *key, const CategoryResult &c,
                   const char *trail) {
        std::fprintf(
            f,
            "    \"%s\": {\"runs\": %d, "
            "\"event_seconds\": %.3f, \"kcycles_per_sec\": %.1f, "
            "\"winsts_per_sec\": %.1f, "
            "\"stepped_seconds\": %.3f, "
            "\"stepped_kcycles_per_sec\": %.1f, "
            "\"stepped_winsts_per_sec\": %.1f, "
            "\"event_speedup\": %.3f, \"stats_identical\": true}%s\n",
            key, c.runs, c.eventSeconds, c.kcycles(c.eventSeconds),
            c.winsts(c.eventSeconds), c.steppedSeconds,
            c.kcycles(c.steppedSeconds), c.winsts(c.steppedSeconds),
            c.speedup(), trail);
    };
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"host_throughput\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"scale\": %.3f,\n", scale);
    std::fprintf(f, "  \"jobs\": %d,\n", sweepJobs());
    std::fprintf(f, "  \"categories\": {\n");
    cat("memory_intensive", mem, ",");
    cat("compute_intensive", comp, "");
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"fast_forward\": {\"bench\": \"%s\", "
                 "\"runs\": %d, "
                 "\"seconds_off\": %.3f, \"seconds_on\": %.3f, "
                 "\"speedup\": %.3f, \"stats_identical\": true}\n",
                 ab.bench.c_str(), ab.runs, ab.secondsOff, ab.secondsOn,
                 ab.speedup());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

int
run(const bench::Cli &cli)
{
    const bool quick = cli.quick;
    bench::printHeader(quick
                           ? "Host throughput (quick smoke)"
                           : "Host throughput (full benchmark set)");

    std::vector<std::string> memNames =
        bench::filterNames(bench::benchNames(true), cli);
    std::vector<std::string> compNames =
        bench::filterNames(bench::benchNames(false), cli);
    double scale = quick ? 0.25 : bench::figureScale;
    if (quick) {
        // First two of each category, in Table 2 order: deterministic
        // and cheap, yet still one streaming and one irregular kernel.
        memNames.resize(std::min<std::size_t>(2, memNames.size()));
        compNames.resize(std::min<std::size_t>(2, compNames.size()));
    }

    std::printf("stepped vs event core (each pair checked "
                "bit-identical):\n");
    CategoryResult mem =
        timeCategory("memory-intensive", memNames, scale);
    CategoryResult comp =
        timeCategory("compute-intensive", compNames, scale);

    std::printf("\nfast-forward A/B (memory-intensive workloads, "
                "low occupancy):\n");
    FastForwardAb ab = fastForwardAb(memNames, scale * 0.25);

    writeJson(cli.jsonPath.empty() ? "BENCH_host_throughput.json"
                                   : cli.jsonPath.c_str(),
              quick, scale, mem, comp, ab);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "host_throughput", run);
}
