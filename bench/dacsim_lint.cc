/**
 * @file
 * dacsim-lint: run the kernel-IR static-analysis framework
 * (DESIGN.md §10) over every registered workload kernel.
 *
 * Usage:
 *   dacsim-lint [--json FILE] [--json-one FILE] [--quiet] [WORKLOAD...]
 *
 * With no WORKLOAD arguments all 29 benchmarks are linted. The text
 * report goes to stdout; --json additionally writes one combined JSON
 * document, and --json-one (valid with exactly one workload) writes
 * that kernel's report in the same single-report format as the golden
 * fixtures under tests/golden/. The exit status is non-zero when any
 * kernel has an unsuppressed error-severity finding, so the tool can
 * gate CI (scripts/check.sh).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/checkers.h"
#include "analysis/pass_manager.h"
#include "common/log.h"
#include "workloads/workload.h"

using namespace dacsim;

namespace
{

/** Scale small enough to prepare every workload quickly, large enough
 * that every kernel keeps its full structure. */
constexpr double kLintScale = 0.05;

int
usage()
{
    std::fprintf(stderr,
                 "usage: dacsim-lint [--json FILE] [--json-one FILE] "
                 "[--quiet] [WORKLOAD...]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    std::string jsonOnePath;
    bool quiet = false;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (++i >= argc)
                return usage();
            jsonPath = argv[i];
        } else if (std::strcmp(argv[i], "--json-one") == 0) {
            if (++i >= argc)
                return usage();
            jsonOnePath = argv[i];
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (argv[i][0] == '-') {
            return usage();
        } else {
            names.emplace_back(argv[i]);
        }
    }

    std::vector<const Workload *> todo;
    if (names.empty()) {
        for (const Workload &wl : allWorkloads())
            todo.push_back(&wl);
    } else {
        for (const std::string &n : names)
            todo.push_back(&findWorkload(n));
    }

    PassManager pm = PassManager::withAllCheckers();
    std::vector<LintReport> reports;
    int errors = 0, warnings = 0, suppressed = 0;
    for (const Workload *wl : todo) {
        GpuMemory gmem;
        PreparedWorkload prep;
        try {
            prep = wl->prepare(gmem, kLintScale);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "dacsim-lint: cannot prepare %s: %s\n",
                         wl->name.c_str(), e.what());
            return 2;
        }
        AnalysisContext ctx(prep.kernel, DacConfig{},
                            {true, prep.block});
        LintReport rep = pm.run(ctx);
        errors += rep.numErrors;
        warnings += rep.numWarnings;
        suppressed += rep.numSuppressed;
        if (!quiet || !rep.clean())
            std::fputs(rep.renderText().c_str(), stdout);
        reports.push_back(std::move(rep));
    }

    std::printf("dacsim-lint: %zu kernel(s), %d error(s), %d warning(s), "
                "%d suppressed\n",
                reports.size(), errors, warnings, suppressed);

    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath, std::ios::trunc);
        if (!os.good()) {
            std::fprintf(stderr, "dacsim-lint: cannot write %s\n",
                         jsonPath.c_str());
            return 2;
        }
        os << renderJsonReportList(reports) << "\n";
    }
    if (!jsonOnePath.empty()) {
        if (reports.size() != 1) {
            std::fprintf(stderr,
                         "dacsim-lint: --json-one needs exactly one "
                         "workload\n");
            return 2;
        }
        std::ofstream os(jsonOnePath, std::ios::trunc);
        if (!os.good()) {
            std::fprintf(stderr, "dacsim-lint: cannot write %s\n",
                         jsonOnePath.c_str());
            return 2;
        }
        os << reports.front().renderJson() << "\n";
    }
    return errors > 0 ? 1 : 0;
}
