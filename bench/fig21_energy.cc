/**
 * @file
 * Figure 21 — Energy Consumption of DAC Normalized to the Baseline
 * GPU, with the paper's breakdown stack: DAC overhead / ALU /
 * register / other dynamic / static.
 *
 * Paper reference points: 0.798x total energy (20.2% reduction),
 * 18.4% dynamic-energy reduction, DAC overhead under 1% of dynamic
 * energy.
 */

#include <cstdio>

#include "bench_util.h"
#include "energy/energy.h"

using namespace dacsim;

namespace
{

int
run(const bench::Cli &cli)
{
    bench::printHeader(
        "Figure 21: DAC Energy Normalized to the Baseline GPU");
    std::printf("%-5s %9s %7s %7s %7s %7s %8s\n", "bench", "overhead",
                "ALU", "reg", "other", "static", "total");

    const std::vector<Workload> works = bench::selectWorkloads(cli);
    std::vector<bench::SweepJob> jobs;
    for (const Workload &w : works) {
        bench::SweepJob j;
        j.bench = w.name;
        j.opt = RunOptions::fromEnv(w.name);
        j.opt.scale = bench::figureScale;
        jobs.push_back(j);
        j.opt.tech = Technique::Dac;
        jobs.push_back(std::move(j));
    }
    std::vector<RunOutcome> outs = bench::runSweep(jobs);

    std::vector<double> totals, dynamics, overheads;
    for (std::size_t wi = 0; wi < works.size(); ++wi) {
        const Workload &w = works[wi];
        const RunOutcome &base = outs[wi * 2];
        const RunOutcome &dac = outs[wi * 2 + 1];
        if (!bench::reportRun("fig21", w.name, Technique::Baseline,
                              base) ||
            !bench::reportRun("fig21", w.name, Technique::Dac, dac)) {
            continue;
        }
        EnergyBreakdown eb = computeEnergy(base.stats);
        EnergyBreakdown ed = computeEnergy(dac.stats);
        double bt = eb.total();
        std::printf("%-5s %8.3f %7.3f %7.3f %7.3f %7.3f %8.3f\n",
                    w.name.c_str(), ed.dacOverhead / bt, ed.alu / bt,
                    ed.reg / bt, ed.otherDynamic / bt,
                    ed.staticEnergy / bt, ed.total() / bt);
        totals.push_back(ed.total() / bt);
        dynamics.push_back(ed.dynamic() / eb.dynamic());
        overheads.push_back(ed.dacOverhead / ed.dynamic());
    }
    std::printf("\nMEAN total energy: %.3fx -> %.1f%% reduction "
                "(paper: 20.2%%)\n",
                bench::geomean(totals),
                100.0 * (1.0 - bench::geomean(totals)));
    std::printf("MEAN dynamic energy: %.3fx -> %.1f%% reduction "
                "(paper: 18.4%%)\n",
                bench::geomean(dynamics),
                100.0 * (1.0 - bench::geomean(dynamics)));
    std::printf("MEAN DAC overhead: %.2f%% of dynamic energy "
                "(paper: 0.96%%)\n",
                100.0 * bench::geomean(overheads));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "fig21_energy", run);
}
