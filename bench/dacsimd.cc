/**
 * @file
 * dacsimd — the simulation-service daemon and its stress client
 * (DESIGN.md §14).
 *
 * Serve mode (default) listens on a unix-domain socket and executes
 * submitted {benchmark, technique, scale, faults} jobs in
 * fork-isolated, watchdog-guarded, retried worker children, backed by
 * a content-addressed result cache and a durable queue (kill -9 the
 * daemon; restart it; the backlog resumes). On exit it prints one
 * counters line:
 *   dacsimd: jobs=... sims=... cache_hits=... quarantined=...
 *
 * Stress mode (--stress N) is the service's own verifier: it submits
 * N typed JobSpecs over the socket — concurrently, cycling the
 * benchmark/technique space — and byte-compares every JobResult's
 * outcome against a locally computed runWorkload() of the identical
 * job. With --progress each job additionally streams its counter
 * timeline (JobProgress frames) and the client checks the stream ends
 * exactly at the run's final cycle. Run it against a daemon with
 * DACSIM_SERVICE_CHAOS set and it proves the whole failure surface
 * (injected crashes, watchdog kills, retries, dedup, cache, restarted
 * streams) never changes a single simulated bit.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <signal.h>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/journal.h"
#include "harness/sweep.h"
#include "service/client.h"
#include "service/daemon.h"

using namespace dacsim;

namespace
{

service::Daemon *g_daemon = nullptr;

void
onSignal(int)
{
    if (g_daemon != nullptr)
        g_daemon->requestStop();
}

void
usage(std::FILE *f)
{
    std::fprintf(
        f,
        "usage: dacsimd [options]                    serve mode\n"
        "       dacsimd --stress N [options]         stress-client "
        "mode\n"
        "  --socket PATH      unix socket (DACSIM_SERVICE_SOCKET)\n"
        "  --dir PATH         state dir: cache + queue "
        "(DACSIM_SERVICE_DIR)\n"
        "  --workers N        worker pool size "
        "(DACSIM_SERVICE_WORKERS)\n"
        "  --timeout-ms N     per-job watchdog deadline "
        "(DACSIM_SERVICE_TIMEOUT_MS)\n"
        "  --retries N        retries after host-side flake "
        "(DACSIM_SERVICE_RETRIES)\n"
        "  --crash-limit N    deterministic failures before blacklist "
        "(default 3)\n"
        "  --chaos SPEC       inject failures, e.g. "
        "crash=0.2,timeout=0.05,seed=7\n"
        "  --abort-after N    _Exit(3) after N fresh sims (kill -9 "
        "stand-in)\n"
        "  --idle-exit-ms N   exit after N ms with no work (0: "
        "serve forever)\n"
        "  --queue-depth N    per-client admission bound "
        "(DACSIM_SERVICE_QUEUE_DEPTH; 0: unbounded)\n"
        "  --stress N         submit N verified jobs instead of "
        "serving\n"
        "  --progress         stream each stress job's timeline and "
        "verify it\n"
        "  --scale S          stress-job workload scale (default "
        "0.125)\n"
        "  --help             this text\n\n%s",
        envHelpText().c_str());
}

int
serveMode(const service::DaemonOptions &opt)
{
    service::Daemon daemon(opt);
    std::string err;
    if (!daemon.start(&err)) {
        std::fprintf(stderr, "dacsimd: %s\n", err.c_str());
        return 1;
    }
    g_daemon = &daemon;
    ::signal(SIGINT, onSignal);
    ::signal(SIGTERM, onSignal);
    std::fprintf(stderr, "dacsimd: serving on %s (state in %s)\n",
                 opt.socketPath.c_str(), opt.dir.c_str());
    daemon.serve();
    g_daemon = nullptr;
    return 0;
}

int
stressMode(const std::string &socketPath, int jobs, double scale,
           bool progress)
{
    // The job space: every benchmark x technique at the given scale,
    // cycled; repeats past one full cycle exercise the daemon's cache
    // and in-flight dedup.
    struct Point
    {
        std::string bench;
        Technique tech;
    };
    std::vector<Point> points;
    for (const Workload &w : allWorkloads())
        for (Technique t : {Technique::Baseline, Technique::Cae,
                            Technique::Mta, Technique::Dac})
            points.push_back({w.name, t});

    // Local ground truth, one simulation per unique job.
    std::mutex truthMu;
    std::map<std::string, std::string> truth; // "bench|tech" -> encoded
    auto truthFor = [&](const Point &p) {
        const std::string key =
            p.bench + "|" + techniqueName(p.tech);
        {
            std::lock_guard<std::mutex> g(truthMu);
            auto it = truth.find(key);
            if (it != truth.end())
                return it->second;
        }
        RunOptions opt;
        opt.tech = p.tech;
        opt.scale = scale;
        const std::string enc = encodeOutcome(runWorkload(p.bench, opt));
        std::lock_guard<std::mutex> g(truthMu);
        truth[key] = enc;
        return enc;
    };

    std::atomic<int> verified{0}, mismatches{0}, failures{0};
    std::atomic<long> frames{0};
    parallelFor(static_cast<std::size_t>(jobs), [&](std::size_t i) {
        const Point &p = points[i % points.size()];
        service::Client cli(socketPath);
        service::JobSpec spec;
        spec.id = i + 1;
        spec.bench = p.bench;
        spec.tech = p.tech;
        spec.setScale(scale);
        spec.client = "stress";
        spec.progress = progress;
        // The stream's last frame is the end-of-run sample: whatever
        // restarts chaos forced, a completed job's stream must end at
        // the run's exact final cycle.
        std::uint64_t lastCycle = 0;
        if (progress)
            cli.onProgress([&](const service::JobProgress &pr) {
                frames.fetch_add(1);
                lastCycle = pr.sample.cycle;
            });
        service::JobResult rs;
        std::string err;
        if (!cli.call(spec, &rs, &err)) {
            std::fprintf(stderr, "stress: job %zu: %s\n", i, err.c_str());
            failures.fetch_add(1);
            return;
        }
        if (!rs.ok()) {
            std::fprintf(stderr, "stress: job %zu failed: %s\n", i,
                         rs.errorJson.c_str());
            failures.fetch_add(1);
            return;
        }
        if (progress && lastCycle != rs.outcome.stats.cycles) {
            std::fprintf(stderr,
                         "stress: job %zu (%s/%s): stream ended at "
                         "cycle %llu but the run ended at %llu\n",
                         i, p.bench.c_str(), techniqueName(p.tech),
                         static_cast<unsigned long long>(lastCycle),
                         static_cast<unsigned long long>(
                             rs.outcome.stats.cycles));
            mismatches.fetch_add(1);
            return;
        }
        if (encodeOutcome(rs.outcome) != truthFor(p)) {
            std::fprintf(stderr,
                         "stress: job %zu (%s/%s): service outcome "
                         "differs from the direct run\n",
                         i, p.bench.c_str(), techniqueName(p.tech));
            mismatches.fetch_add(1);
            return;
        }
        verified.fetch_add(1);
    });
    std::printf("stress: jobs=%d verified=%d mismatches=%d failures=%d"
                " frames=%ld\n",
                jobs, verified.load(), mismatches.load(), failures.load(),
                frames.load());
    return mismatches.load() == 0 && failures.load() == 0 ? 0 : 1;
}

int
run(int argc, char **argv)
{
    service::DaemonOptions opt = service::DaemonOptions::fromEnv();
    int stress = 0;
    bool progress = false;
    double scale = 0.125;
    auto value = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "dacsimd: %s needs a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--socket") == 0) {
            opt.socketPath = value(i, a);
        } else if (std::strcmp(a, "--dir") == 0) {
            opt.dir = value(i, a);
        } else if (std::strcmp(a, "--workers") == 0) {
            opt.workers = std::atoi(value(i, a));
        } else if (std::strcmp(a, "--timeout-ms") == 0) {
            opt.timeoutMs = std::atoi(value(i, a));
        } else if (std::strcmp(a, "--retries") == 0) {
            opt.maxRetries = std::atoi(value(i, a));
        } else if (std::strcmp(a, "--crash-limit") == 0) {
            opt.crashLimit = std::atoi(value(i, a));
        } else if (std::strcmp(a, "--chaos") == 0) {
            std::string err;
            if (!service::ChaosSpec::parse(value(i, a), &opt.chaos,
                                           &err)) {
                std::fprintf(stderr, "dacsimd: --chaos: %s\n",
                             err.c_str());
                return 2;
            }
        } else if (std::strcmp(a, "--abort-after") == 0) {
            opt.abortAfter = std::atol(value(i, a));
        } else if (std::strcmp(a, "--idle-exit-ms") == 0) {
            opt.idleExitMs = std::atoi(value(i, a));
        } else if (std::strcmp(a, "--queue-depth") == 0) {
            opt.queueDepth = std::atoi(value(i, a));
            if (opt.queueDepth < 0) {
                std::fprintf(stderr,
                             "dacsimd: --queue-depth needs a "
                             "non-negative count\n");
                return 2;
            }
        } else if (std::strcmp(a, "--progress") == 0) {
            progress = true;
        } else if (std::strcmp(a, "--stress") == 0) {
            stress = std::atoi(value(i, a));
            if (stress <= 0) {
                std::fprintf(stderr,
                             "dacsimd: --stress needs a positive job "
                             "count\n");
                return 2;
            }
        } else if (std::strcmp(a, "--scale") == 0) {
            scale = std::atof(value(i, a));
            if (!(scale > 0.0)) {
                std::fprintf(stderr,
                             "dacsimd: --scale needs a positive "
                             "value\n");
                return 2;
            }
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "dacsimd: unknown option %s\n", a);
            usage(stderr);
            return 2;
        }
    }
    if (opt.socketPath.empty()) {
        std::fprintf(stderr,
                     "dacsimd: no socket (--socket or "
                     "DACSIM_SERVICE_SOCKET)\n");
        return 2;
    }
    if (stress > 0)
        return stressMode(opt.socketPath, stress, scale, progress);
    if (opt.dir.empty()) {
        std::fprintf(
            stderr,
            "dacsimd: no state directory (--dir or DACSIM_SERVICE_DIR)\n");
        return 2;
    }
    return serveMode(opt);
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain("dacsimd", [&] { return run(argc, argv); });
}
