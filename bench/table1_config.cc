/**
 * @file
 * Table 1 — Simulation Parameters. Prints the active model
 * configuration in the paper's table layout so a reader can check the
 * reproduction's provisioning against the original.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "dac/engine.h"

using namespace dacsim;

namespace
{

int
run()
{
    GpuConfig g;
    DacConfig d;
    CaeConfig c;
    MtaConfig m;

    bench::printHeader("Table 1: Simulation Parameters (dacsim model)");

    std::printf("Baseline GPU\n");
    std::printf("  GPU        Fermi (GTX480), %d SMs, %d warps/SM\n",
                g.numSms, g.maxWarpsPerSm);
    std::printf("  SM         %d SIMT lanes, %d schedulers, "
                "%d-cycle warp issue\n",
                g.lanesPerSm, g.sched.schedulersPerSm,
                g.sched.warpIssueCycles);
    std::printf("  L1         %d KB/SM, %d ways, %d MSHRs, "
                "%d-cycle hit\n",
                g.l1.sizeBytes / 1024, g.l1.ways, g.l1.mshrs,
                g.l1.hitLatency);
    std::printf("  L2         %d KB, %d partitions, %d ways, "
                "%d-cycle hit\n",
                g.l2.sizeBytes / 1024, g.dram.partitions, g.l2.ways,
                g.l2.hitLatency);
    std::printf("  DRAM       %d-cycle latency, %d cycles/128B line "
                "per partition\n",
                g.dram.latency, g.dram.cyclesPerLine);
    std::printf("  NoC        %d cycles each way; ALU latency %d\n\n",
                g.nocLatency, g.aluLatency);

    std::printf("GPU Prefetcher (MTA)\n");
    std::printf("  Buffer     %d KB/SM (in addition to the L1)\n",
                m.bufferBytes / 1024);
    std::printf("  Training   threshold %d, max degree %d, throttle "
                "window %d\n\n",
                m.trainThreshold, m.maxDegree, m.throttleWindow);

    std::printf("Compact Affine Execution (CAE)\n");
    std::printf("  Units      %d affine units/SM, %d-cycle affine "
                "issue\n\n",
                c.affineUnits, c.affineIssueCycles);

    std::printf("Decoupled Affine Computation (DAC)\n");
    std::printf("  ATQ        %d entries/SM\n", d.atqEntries);
    std::printf("  PWAQ       %d entries/SM, partitioned among warps\n",
                d.pwaqEntries);
    std::printf("  PWPQ       %d entries/SM, partitioned among warps\n",
                d.pwpqEntries);
    std::printf("  Stack      depth %d (WLS + per-warp stacks)\n",
                d.stackDepth);
    std::printf("  Divergence %d conditions (%d tuples) per operand\n",
                d.maxDivergentConditions,
                1 << d.maxDivergentConditions);
    std::printf("  Expansion  %d records/cycle (AEU + PEU ALUs), early "
                "fetch up to %d lines/record\n",
                d.expansionsPerCycle, DacEngine::maxEarlyFetchLines);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, "table1_config",
                            [](const bench::Cli &) { return run(); });
}
