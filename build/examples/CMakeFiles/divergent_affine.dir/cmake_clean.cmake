file(REMOVE_RECURSE
  "CMakeFiles/divergent_affine.dir/divergent_affine.cpp.o"
  "CMakeFiles/divergent_affine.dir/divergent_affine.cpp.o.d"
  "divergent_affine"
  "divergent_affine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divergent_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
