# Empty compiler generated dependencies file for divergent_affine.
# This may be replaced when dependencies are built.
