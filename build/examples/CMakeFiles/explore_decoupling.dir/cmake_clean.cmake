file(REMOVE_RECURSE
  "CMakeFiles/explore_decoupling.dir/explore_decoupling.cpp.o"
  "CMakeFiles/explore_decoupling.dir/explore_decoupling.cpp.o.d"
  "explore_decoupling"
  "explore_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
