# Empty compiler generated dependencies file for explore_decoupling.
# This may be replaced when dependencies are built.
