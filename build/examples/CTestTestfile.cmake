# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.divergent_affine "/root/repo/build/examples/divergent_affine")
set_tests_properties(example.divergent_affine PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.run_benchmark_lib "/root/repo/build/examples/run_benchmark" "LIB" "0.12")
set_tests_properties(example.run_benchmark_lib PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.explore_decoupling "/root/repo/build/examples/explore_decoupling" "/root/repo/examples/sample.kasm")
set_tests_properties(example.explore_decoupling PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
