
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_affine_tuple.cc" "tests/CMakeFiles/dacsim_tests.dir/test_affine_tuple.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_affine_tuple.cc.o.d"
  "/root/repo/tests/test_affine_types.cc" "tests/CMakeFiles/dacsim_tests.dir/test_affine_types.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_affine_types.cc.o.d"
  "/root/repo/tests/test_affine_value.cc" "tests/CMakeFiles/dacsim_tests.dir/test_affine_value.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_affine_value.cc.o.d"
  "/root/repo/tests/test_affine_warp.cc" "tests/CMakeFiles/dacsim_tests.dir/test_affine_warp.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_affine_warp.cc.o.d"
  "/root/repo/tests/test_alu.cc" "tests/CMakeFiles/dacsim_tests.dir/test_alu.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_alu.cc.o.d"
  "/root/repo/tests/test_assembler.cc" "tests/CMakeFiles/dacsim_tests.dir/test_assembler.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_assembler.cc.o.d"
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/dacsim_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_cfg.cc" "tests/CMakeFiles/dacsim_tests.dir/test_cfg.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_cfg.cc.o.d"
  "/root/repo/tests/test_dac_engine.cc" "tests/CMakeFiles/dacsim_tests.dir/test_dac_engine.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_dac_engine.cc.o.d"
  "/root/repo/tests/test_decoupler.cc" "tests/CMakeFiles/dacsim_tests.dir/test_decoupler.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_decoupler.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/dacsim_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/dacsim_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_gpu.cc" "tests/CMakeFiles/dacsim_tests.dir/test_gpu.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_gpu.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/dacsim_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_mem_system.cc" "tests/CMakeFiles/dacsim_tests.dir/test_mem_system.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_mem_system.cc.o.d"
  "/root/repo/tests/test_simt_stack.cc" "tests/CMakeFiles/dacsim_tests.dir/test_simt_stack.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_simt_stack.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/dacsim_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/dacsim_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dacsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
