# Empty compiler generated dependencies file for dacsim_tests.
# This may be replaced when dependencies are built.
