file(REMOVE_RECURSE
  "libdacsim.a"
)
