# Empty compiler generated dependencies file for dacsim.
# This may be replaced when dependencies are built.
