
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/mta.cc" "src/CMakeFiles/dacsim.dir/baselines/mta.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/baselines/mta.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/dacsim.dir/common/config.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/common/config.cc.o.d"
  "/root/repo/src/compiler/affine_types.cc" "src/CMakeFiles/dacsim.dir/compiler/affine_types.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/compiler/affine_types.cc.o.d"
  "/root/repo/src/compiler/cfg.cc" "src/CMakeFiles/dacsim.dir/compiler/cfg.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/compiler/cfg.cc.o.d"
  "/root/repo/src/compiler/decoupler.cc" "src/CMakeFiles/dacsim.dir/compiler/decoupler.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/compiler/decoupler.cc.o.d"
  "/root/repo/src/compiler/reaching_defs.cc" "src/CMakeFiles/dacsim.dir/compiler/reaching_defs.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/compiler/reaching_defs.cc.o.d"
  "/root/repo/src/dac/affine_tuple.cc" "src/CMakeFiles/dacsim.dir/dac/affine_tuple.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/dac/affine_tuple.cc.o.d"
  "/root/repo/src/dac/affine_value.cc" "src/CMakeFiles/dacsim.dir/dac/affine_value.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/dac/affine_value.cc.o.d"
  "/root/repo/src/dac/affine_warp.cc" "src/CMakeFiles/dacsim.dir/dac/affine_warp.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/dac/affine_warp.cc.o.d"
  "/root/repo/src/dac/engine.cc" "src/CMakeFiles/dacsim.dir/dac/engine.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/dac/engine.cc.o.d"
  "/root/repo/src/energy/energy.cc" "src/CMakeFiles/dacsim.dir/energy/energy.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/energy/energy.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/dacsim.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/harness/runner.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/dacsim.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/dacsim.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/dacsim.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/isa/opcode.cc.o.d"
  "/root/repo/src/isa/operand.cc" "src/CMakeFiles/dacsim.dir/isa/operand.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/isa/operand.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/CMakeFiles/dacsim.dir/mem/mem_system.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/mem/mem_system.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/CMakeFiles/dacsim.dir/sim/gpu.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/sim/gpu.cc.o.d"
  "/root/repo/src/sim/sm.cc" "src/CMakeFiles/dacsim.dir/sim/sm.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/sim/sm.cc.o.d"
  "/root/repo/src/workloads/w_aes.cc" "src/CMakeFiles/dacsim.dir/workloads/w_aes.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_aes.cc.o.d"
  "/root/repo/src/workloads/w_bfs.cc" "src/CMakeFiles/dacsim.dir/workloads/w_bfs.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_bfs.cc.o.d"
  "/root/repo/src/workloads/w_bp.cc" "src/CMakeFiles/dacsim.dir/workloads/w_bp.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_bp.cc.o.d"
  "/root/repo/src/workloads/w_bs.cc" "src/CMakeFiles/dacsim.dir/workloads/w_bs.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_bs.cc.o.d"
  "/root/repo/src/workloads/w_bt.cc" "src/CMakeFiles/dacsim.dir/workloads/w_bt.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_bt.cc.o.d"
  "/root/repo/src/workloads/w_cfd.cc" "src/CMakeFiles/dacsim.dir/workloads/w_cfd.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_cfd.cc.o.d"
  "/root/repo/src/workloads/w_cp.cc" "src/CMakeFiles/dacsim.dir/workloads/w_cp.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_cp.cc.o.d"
  "/root/repo/src/workloads/w_cs.cc" "src/CMakeFiles/dacsim.dir/workloads/w_cs.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_cs.cc.o.d"
  "/root/repo/src/workloads/w_fft.cc" "src/CMakeFiles/dacsim.dir/workloads/w_fft.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_fft.cc.o.d"
  "/root/repo/src/workloads/w_hi.cc" "src/CMakeFiles/dacsim.dir/workloads/w_hi.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_hi.cc.o.d"
  "/root/repo/src/workloads/w_hs.cc" "src/CMakeFiles/dacsim.dir/workloads/w_hs.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_hs.cc.o.d"
  "/root/repo/src/workloads/w_img.cc" "src/CMakeFiles/dacsim.dir/workloads/w_img.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_img.cc.o.d"
  "/root/repo/src/workloads/w_km.cc" "src/CMakeFiles/dacsim.dir/workloads/w_km.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_km.cc.o.d"
  "/root/repo/src/workloads/w_lbm.cc" "src/CMakeFiles/dacsim.dir/workloads/w_lbm.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_lbm.cc.o.d"
  "/root/repo/src/workloads/w_lib.cc" "src/CMakeFiles/dacsim.dir/workloads/w_lib.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_lib.cc.o.d"
  "/root/repo/src/workloads/w_lud.cc" "src/CMakeFiles/dacsim.dir/workloads/w_lud.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_lud.cc.o.d"
  "/root/repo/src/workloads/w_mc.cc" "src/CMakeFiles/dacsim.dir/workloads/w_mc.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_mc.cc.o.d"
  "/root/repo/src/workloads/w_mq.cc" "src/CMakeFiles/dacsim.dir/workloads/w_mq.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_mq.cc.o.d"
  "/root/repo/src/workloads/w_mt.cc" "src/CMakeFiles/dacsim.dir/workloads/w_mt.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_mt.cc.o.d"
  "/root/repo/src/workloads/w_pf.cc" "src/CMakeFiles/dacsim.dir/workloads/w_pf.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_pf.cc.o.d"
  "/root/repo/src/workloads/w_sc.cc" "src/CMakeFiles/dacsim.dir/workloads/w_sc.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_sc.cc.o.d"
  "/root/repo/src/workloads/w_sg.cc" "src/CMakeFiles/dacsim.dir/workloads/w_sg.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_sg.cc.o.d"
  "/root/repo/src/workloads/w_sp.cc" "src/CMakeFiles/dacsim.dir/workloads/w_sp.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_sp.cc.o.d"
  "/root/repo/src/workloads/w_spv.cc" "src/CMakeFiles/dacsim.dir/workloads/w_spv.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_spv.cc.o.d"
  "/root/repo/src/workloads/w_sr1.cc" "src/CMakeFiles/dacsim.dir/workloads/w_sr1.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_sr1.cc.o.d"
  "/root/repo/src/workloads/w_sr2.cc" "src/CMakeFiles/dacsim.dir/workloads/w_sr2.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_sr2.cc.o.d"
  "/root/repo/src/workloads/w_st.cc" "src/CMakeFiles/dacsim.dir/workloads/w_st.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_st.cc.o.d"
  "/root/repo/src/workloads/w_sto.cc" "src/CMakeFiles/dacsim.dir/workloads/w_sto.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_sto.cc.o.d"
  "/root/repo/src/workloads/w_tp.cc" "src/CMakeFiles/dacsim.dir/workloads/w_tp.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/w_tp.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/dacsim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/dacsim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
