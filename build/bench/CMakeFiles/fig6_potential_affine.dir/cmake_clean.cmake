file(REMOVE_RECURSE
  "CMakeFiles/fig6_potential_affine.dir/fig6_potential_affine.cc.o"
  "CMakeFiles/fig6_potential_affine.dir/fig6_potential_affine.cc.o.d"
  "fig6_potential_affine"
  "fig6_potential_affine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_potential_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
