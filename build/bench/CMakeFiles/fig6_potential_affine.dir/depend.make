# Empty dependencies file for fig6_potential_affine.
# This may be replaced when dependencies are built.
