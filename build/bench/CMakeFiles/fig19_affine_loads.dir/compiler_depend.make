# Empty compiler generated dependencies file for fig19_affine_loads.
# This may be replaced when dependencies are built.
