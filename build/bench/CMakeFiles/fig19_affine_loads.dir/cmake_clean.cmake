file(REMOVE_RECURSE
  "CMakeFiles/fig19_affine_loads.dir/fig19_affine_loads.cc.o"
  "CMakeFiles/fig19_affine_loads.dir/fig19_affine_loads.cc.o.d"
  "fig19_affine_loads"
  "fig19_affine_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_affine_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
