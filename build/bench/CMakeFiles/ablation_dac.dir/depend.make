# Empty dependencies file for ablation_dac.
# This may be replaced when dependencies are built.
