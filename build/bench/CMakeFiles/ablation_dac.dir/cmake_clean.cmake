file(REMOVE_RECURSE
  "CMakeFiles/ablation_dac.dir/ablation_dac.cc.o"
  "CMakeFiles/ablation_dac.dir/ablation_dac.cc.o.d"
  "ablation_dac"
  "ablation_dac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
