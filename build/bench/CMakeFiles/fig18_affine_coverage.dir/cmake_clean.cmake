file(REMOVE_RECURSE
  "CMakeFiles/fig18_affine_coverage.dir/fig18_affine_coverage.cc.o"
  "CMakeFiles/fig18_affine_coverage.dir/fig18_affine_coverage.cc.o.d"
  "fig18_affine_coverage"
  "fig18_affine_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_affine_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
