# Empty compiler generated dependencies file for fig18_affine_coverage.
# This may be replaced when dependencies are built.
