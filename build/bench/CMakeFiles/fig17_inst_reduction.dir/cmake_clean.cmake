file(REMOVE_RECURSE
  "CMakeFiles/fig17_inst_reduction.dir/fig17_inst_reduction.cc.o"
  "CMakeFiles/fig17_inst_reduction.dir/fig17_inst_reduction.cc.o.d"
  "fig17_inst_reduction"
  "fig17_inst_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_inst_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
