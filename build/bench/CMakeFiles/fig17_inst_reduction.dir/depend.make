# Empty dependencies file for fig17_inst_reduction.
# This may be replaced when dependencies are built.
