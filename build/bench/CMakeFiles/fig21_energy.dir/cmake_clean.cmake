file(REMOVE_RECURSE
  "CMakeFiles/fig21_energy.dir/fig21_energy.cc.o"
  "CMakeFiles/fig21_energy.dir/fig21_energy.cc.o.d"
  "fig21_energy"
  "fig21_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
