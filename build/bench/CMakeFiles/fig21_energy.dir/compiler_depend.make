# Empty compiler generated dependencies file for fig21_energy.
# This may be replaced when dependencies are built.
