file(REMOVE_RECURSE
  "CMakeFiles/fig20_mta_coverage.dir/fig20_mta_coverage.cc.o"
  "CMakeFiles/fig20_mta_coverage.dir/fig20_mta_coverage.cc.o.d"
  "fig20_mta_coverage"
  "fig20_mta_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_mta_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
