# Empty dependencies file for fig20_mta_coverage.
# This may be replaced when dependencies are built.
