/**
 * @file
 * DAC engine unit tests: ATQ/PWAQ/PWPQ queue mechanics, per-warp
 * FIFO delivery order, expansion of tuples into warp address records,
 * early-fetch line locking, the uncoalesced-record fallback, and
 * barrier-epoch gating (paper Sections 4.1-4.3).
 */

#include <gtest/gtest.h>

#include "dac/engine.h"

using namespace dacsim;

namespace
{

struct EngineFixture : ::testing::Test
{
    GpuConfig gcfg;
    DacConfig dcfg;
    RunStats stats;
    MemorySystem mem{gcfg, &stats};
    DacEngine eng{0, gcfg, dcfg, mem, stats};
    BatchInfo batch;
    std::vector<int> epochs;
    std::vector<int> passed;

    void
    makeBatch(int ctas, int warps_per_cta)
    {
        batch = BatchInfo{};
        batch.grid = {ctas, 1, 1};
        batch.block = {warps_per_cta * warpSize, 1, 1};
        batch.numCtas = ctas;
        for (int c = 0; c < ctas; ++c) {
            for (int w = 0; w < warps_per_cta; ++w) {
                WarpSlot s;
                s.ctaSlot = c;
                s.ctaId = {c, 0, 0};
                s.warpInCta = w;
                s.valid = fullMask;
                batch.warps.push_back(s);
            }
        }
        eng.startBatch(&batch);
        epochs.assign(static_cast<std::size_t>(ctas), 0);
        passed.assign(static_cast<std::size_t>(ctas), 0);
    }

    /** A unit-stride address tuple: base + 4*(ctaid*ntid + tid). */
    AffineValue
    strideTuple(Addr base)
    {
        AffineTuple t;
        t.base = static_cast<RegVal>(base);
        t.tidOff[0] = 4;
        t.ctaOff[0] = 4 * batch.block.x;
        return AffineValue::uniform(t);
    }

    MaskSet
    allActive()
    {
        return batch.validMasks();
    }
};

TEST_F(EngineFixture, EnqueueCapacity)
{
    makeBatch(1, 1);
    for (int i = 0; i < dcfg.atqEntries; ++i) {
        ASSERT_TRUE(eng.canEnq());
        eng.enqAddr(strideTuple(0x1000), MemWidth::U32, false,
                    allActive(), epochs);
    }
    EXPECT_FALSE(eng.canEnq());
}

TEST_F(EngineFixture, ExpandsCorrectAddresses)
{
    makeBatch(2, 2); // 4 warps
    eng.enqAddr(strideTuple(0x1000), MemWidth::U32, false, allActive(),
                epochs);
    for (int i = 0; i < 8; ++i)
        eng.cycle(static_cast<Cycle>(i), passed);
    // Warp 3 = CTA 1, warp-in-cta 1: thread lane 5 has
    // tid.x = 32 + 5 = 37, ctaid = 1.
    const DacEngine::AddrRecord *rec = eng.frontAddr(3);
    ASSERT_NE(rec, nullptr);
    EXPECT_FALSE(rec->isData);
    EXPECT_EQ(rec->mask, fullMask);
    EXPECT_EQ(rec->addrs[5], 0x1000u + 4 * (64 * 1 + 37));
    // Unit stride: 32 consecutive words = 1 line.
    EXPECT_EQ(rec->lines.size(), 1u);
}

TEST_F(EngineFixture, PerWarpFifoOrder)
{
    makeBatch(1, 2);
    eng.enqAddr(strideTuple(0x10000), MemWidth::U32, false, allActive(),
                epochs);
    eng.enqAddr(strideTuple(0x20000), MemWidth::U32, false, allActive(),
                epochs);
    for (int i = 0; i < 16; ++i)
        eng.cycle(static_cast<Cycle>(i), passed);
    const DacEngine::AddrRecord *r0 = eng.frontAddr(0);
    ASSERT_NE(r0, nullptr);
    EXPECT_EQ(lineAlign(r0->addrs[0]), 0x10000u);
    eng.popAddr(0);
    r0 = eng.frontAddr(0);
    ASSERT_NE(r0, nullptr);
    EXPECT_EQ(lineAlign(r0->addrs[0]), 0x20000u);
}

TEST_F(EngineFixture, InactiveWarpsGetNoRecord)
{
    makeBatch(1, 2);
    MaskSet active = allActive();
    active[1] = 0; // warp 1 inactive at the enq
    eng.enqAddr(strideTuple(0x1000), MemWidth::U32, false, active,
                epochs);
    for (int i = 0; i < 8; ++i)
        eng.cycle(static_cast<Cycle>(i), passed);
    EXPECT_NE(eng.frontAddr(0), nullptr);
    EXPECT_EQ(eng.frontAddr(1), nullptr);
}

TEST_F(EngineFixture, DataRecordsFetchAndLock)
{
    makeBatch(1, 1);
    eng.enqAddr(strideTuple(0x4000), MemWidth::U32, true, allActive(),
                epochs);
    for (int i = 0; i < 4; ++i)
        eng.cycle(static_cast<Cycle>(i), passed);
    const DacEngine::AddrRecord *rec = eng.frontAddr(0);
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->isData);
    EXPECT_TRUE(rec->earlyFetched);
    EXPECT_GT(rec->ready, 0u);
    EXPECT_EQ(stats.affineLoadRequests, 1u);
    // The fetched line is locked in L1 until the consumer unlocks.
    EXPECT_FALSE(mem.linePresent(0, 0x8000)); // sanity: other lines no
    EXPECT_TRUE(mem.linePresent(0, lineAlign(0x4000)));
}

TEST_F(EngineFixture, UncoalescedRecordSkipsEarlyFetch)
{
    makeBatch(1, 1);
    AffineTuple t;
    t.base = 0x100000;
    t.tidOff[0] = 4096; // one line per lane: 32 lines
    eng.enqAddr(AffineValue::uniform(t), MemWidth::U32, true,
                allActive(), epochs);
    for (int i = 0; i < 4; ++i)
        eng.cycle(static_cast<Cycle>(i), passed);
    const DacEngine::AddrRecord *rec = eng.frontAddr(0);
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->isData);
    EXPECT_FALSE(rec->earlyFetched);
    EXPECT_EQ(rec->lines.size(), 32u);
    EXPECT_EQ(stats.affineLoadRequests, 0u);
}

TEST_F(EngineFixture, PredicateRecordsCarryMask)
{
    makeBatch(1, 2);
    MaskSet bits = {0x0000ffff, 0xff00ff00};
    MaskSet active = {fullMask, 0x0f0f0f0f};
    eng.enqPred(bits, active, epochs);
    for (int i = 0; i < 8; ++i)
        eng.cycle(static_cast<Cycle>(i), passed);
    const DacEngine::PredRecord *p0 = eng.frontPred(0);
    ASSERT_NE(p0, nullptr);
    EXPECT_EQ(p0->bits, 0x0000ffffu);
    EXPECT_EQ(p0->mask, fullMask);
    const DacEngine::PredRecord *p1 = eng.frontPred(1);
    ASSERT_NE(p1, nullptr);
    EXPECT_EQ(p1->bits, 0xff00ff00u);
    EXPECT_EQ(p1->mask, 0x0f0f0f0fu);
    eng.popPred(0);
    eng.popPred(1);
    EXPECT_TRUE(eng.empty());
}

TEST_F(EngineFixture, BarrierEpochGatesDelivery)
{
    makeBatch(1, 1);
    std::vector<int> after_bar = {1}; // enqueued after one barrier
    eng.enqAddr(strideTuple(0x4000), MemWidth::U32, true, allActive(),
                after_bar);
    for (int i = 0; i < 8; ++i)
        eng.cycle(static_cast<Cycle>(i), passed); // CTA has passed 0
    EXPECT_EQ(eng.frontAddr(0), nullptr); // gated
    EXPECT_EQ(stats.affineLoadRequests, 0u);
    passed[0] = 1; // the CTA passes its barrier
    for (int i = 8; i < 12; ++i)
        eng.cycle(static_cast<Cycle>(i), passed);
    EXPECT_NE(eng.frontAddr(0), nullptr); // delivered + fetched
    EXPECT_EQ(stats.affineLoadRequests, 1u);
}

TEST_F(EngineFixture, PwaqCapacityBlocksDelivery)
{
    makeBatch(1, 1); // 1 warp: pwaq cap = 192 entries
    int cap = dcfg.pwaqPerWarp(1);
    for (int i = 0; i < dcfg.atqEntries; ++i)
        eng.enqAddr(strideTuple(0x1000), MemWidth::U32, false,
                    allActive(), epochs);
    for (int i = 0; i < 400; ++i)
        eng.cycle(static_cast<Cycle>(i), passed);
    // Delivered at most the per-warp capacity; the rest wait in the
    // ATQ (here ATQ(24) < cap(192), so everything drains).
    int delivered = 0;
    while (eng.frontAddr(0)) {
        eng.popAddr(0);
        ++delivered;
    }
    EXPECT_EQ(delivered, std::min(dcfg.atqEntries, cap));
    EXPECT_TRUE(eng.empty());
}

TEST_F(EngineFixture, ExpansionRateLimited)
{
    makeBatch(4, 2); // 8 warps
    eng.enqAddr(strideTuple(0x1000), MemWidth::U32, false, allActive(),
                epochs);
    // One cycle delivers at most expansionsPerCycle records.
    eng.cycle(0, passed);
    int visible = 0;
    for (int w = 0; w < 8; ++w)
        visible += eng.frontAddr(w) != nullptr;
    EXPECT_LE(visible, dcfg.expansionsPerCycle);
}

} // namespace
