/**
 * @file
 * AffineWarp unit tests: tuple-register execution of the affine
 * stream, PEU predicate evaluation and cost tiers, divergence via the
 * Affine SIMT Stack, min/max/abs/sel divergent-tuple handling, and
 * barrier epoch counting — driven directly, without the SM around it.
 */

#include <gtest/gtest.h>

#include "compiler/cfg.h"
#include "dac/affine_warp.h"
#include "isa/assembler.h"

using namespace dacsim;

namespace
{

struct WarpFixture : ::testing::Test
{
    GpuConfig gcfg;
    DacConfig dcfg;
    RunStats stats;
    MemorySystem mem{gcfg, &stats};
    DacEngine eng{0, gcfg, dcfg, mem, stats};
    AffineWarp warp{gcfg, dcfg, eng, stats};
    BatchInfo batch;
    Kernel code;
    std::vector<RegVal> params;
    std::vector<int> passed;

    void
    start(const std::string &src, int ctas = 2, int warps_per_cta = 2,
          std::vector<RegVal> p = {})
    {
        code = assemble(src);
        analyzeControlFlow(code);
        batch = BatchInfo{};
        batch.grid = {ctas, 1, 1};
        batch.block = {warps_per_cta * warpSize, 1, 1};
        batch.numCtas = ctas;
        for (int c = 0; c < ctas; ++c) {
            for (int w = 0; w < warps_per_cta; ++w) {
                WarpSlot s;
                s.ctaSlot = c;
                s.ctaId = {c, 0, 0};
                s.warpInCta = w;
                s.valid = fullMask;
                batch.warps.push_back(s);
            }
        }
        params = std::move(p);
        passed.assign(static_cast<std::size_t>(ctas), 0);
        eng.startBatch(&batch);
        warp.startBatch(&code, &batch, &params);
    }

    /** Run the affine warp to completion (with engine draining). */
    void
    runAll(int max_steps = 100000)
    {
        Cycle now = 0;
        while (!warp.finished() && max_steps-- > 0) {
            eng.cycle(now, passed);
            if (warp.ready(now))
                warp.step(now);
            ++now;
        }
        ASSERT_TRUE(warp.finished()) << "affine warp did not finish";
        for (int i = 0; i < 4096; ++i)
            eng.cycle(now + static_cast<Cycle>(i), passed);
    }
};

TEST_F(WarpFixture, ExecutesAffineChainToCorrectAddresses)
{
    start(R"(
.kernel a
.param A
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $A, r2;
    enq.data.u32 [r3];
    exit;
)",
          2, 2, {0x10000});
    runAll();
    // Warp 3 (cta 1, warp 1) lane 9: gtid = 64 + 32 + 9 = 105.
    const DacEngine::AddrRecord *rec = eng.frontAddr(3);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->addrs[9], 0x10000u + 4 * 105);
    EXPECT_EQ(stats.affineWarpInsts, 6u);
}

TEST_F(WarpFixture, ScalarLoopRunsOncePerBatch)
{
    start(R"(
.kernel a
.param A n
    mov r0, 0;
    shl r1, r0, 0;
L:
    add r0, r0, 1;
    setp.lt p0, r0, $n;
    @p0 bra L;
    exit;
)",
          4, 2, {0, 10});
    runAll();
    // 2 prologue + 10 iterations x 3 + exit = 33, regardless of the
    // number of warps served.
    EXPECT_EQ(stats.affineWarpInsts, 33u);
}

TEST_F(WarpFixture, PeuCostTiers)
{
    // Scalar comparison: 1 op. Affine x-only: 2 per active warp.
    start(R"(
.kernel a
.param n
    setp.lt p0, $n, 100;
    setp.lt p1, tid.x, $n;
    exit;
)",
          1, 2, {7});
    std::uint64_t before = stats.expansionAluOps;
    runAll();
    // 1 (scalar) + 2*2 warps (endpoint) = 5.
    EXPECT_EQ(stats.expansionAluOps - before, 5u);
}

TEST_F(WarpFixture, AffineBranchDivergesAndReconverges)
{
    // Threads below 48 take one path: warp 0 full, warp 1 half, the
    // rest empty; the enq happens on both paths with disjoint masks.
    start(R"(
.kernel a
.param A
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    setp.lt p0, r1, 48;
    @p0 bra T;
    enq.pred p0;
    bra J;
T:
    enq.pred p0;
J:
    exit;
)",
          1, 2, {0});
    runAll();
    // Taken path first: warps 0 and 1 each receive one record from
    // the taken enq (warp 1 partial) and warp 1 one from not-taken.
    const DacEngine::PredRecord *w0 = eng.frontPred(0);
    ASSERT_NE(w0, nullptr);
    EXPECT_EQ(w0->mask, fullMask);
    EXPECT_EQ(w0->bits, fullMask);
    const DacEngine::PredRecord *w1 = eng.frontPred(1);
    ASSERT_NE(w1, nullptr);
    // Warp 1 threads 0..15 have gtid 32..47 < 48.
    EXPECT_EQ(w1->bits, 0x0000ffffu);
    // Delivery order between the two paths' enqueues is FIFO: the
    // taken-path record (mask = lower half) arrives first for warp 1.
    EXPECT_EQ(w1->mask, 0x0000ffffu);
    eng.popPred(1);
    const DacEngine::PredRecord *w1b = eng.frontPred(1);
    ASSERT_NE(w1b, nullptr);
    EXPECT_EQ(w1b->mask, 0xffff0000u);
}

TEST_F(WarpFixture, MinMaxProduceDivergentTuples)
{
    start(R"(
.kernel a
.param A
    sub r0, tid.x, 1;
    max r0, r0, 0;
    shl r1, r0, 2;
    add r1, $A, r1;
    enq.addr.u32 [r1];
    exit;
)",
          1, 1, {0x4000});
    runAll();
    const DacEngine::AddrRecord *rec = eng.frontAddr(0);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->addrs[0], 0x4000u);      // clamped to 0
    EXPECT_EQ(rec->addrs[1], 0x4000u);      // tid 1 -> 0
    EXPECT_EQ(rec->addrs[9], 0x4000u + 32); // tid 9 -> 8*4
}

TEST_F(WarpFixture, SelWithAffinePredicate)
{
    start(R"(
.kernel a
.param A B
    setp.lt p0, tid.x, 8;
    sel r0, $A, $B, p0;
    enq.addr.u32 [r0];
    exit;
)",
          1, 1, {0x1000, 0x2000});
    runAll();
    const DacEngine::AddrRecord *rec = eng.frontAddr(0);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->addrs[3], 0x1000u);
    EXPECT_EQ(rec->addrs[20], 0x2000u);
}

TEST_F(WarpFixture, ModTupleExpansion)
{
    start(R"(
.kernel a
.param A
    mod r0, tid.x, 5;
    shl r1, r0, 2;
    add r1, $A, r1;
    enq.addr.u32 [r1];
    exit;
)",
          1, 1, {0});
    runAll();
    const DacEngine::AddrRecord *rec = eng.frontAddr(0);
    ASSERT_NE(rec, nullptr);
    for (int lane = 0; lane < warpSize; ++lane)
        EXPECT_EQ(rec->addrs[static_cast<std::size_t>(lane)],
                  static_cast<Addr>(4 * (lane % 5)));
}

TEST_F(WarpFixture, BarrierBumpsEpochsWithoutBlocking)
{
    start(R"(
.kernel a
.param A
    bar;
    bar;
    exit;
)",
          3, 1, {0});
    // Mark the bars epoch-counted as the decoupler would.
    for (Instruction &i : code.insts)
        if (i.isBarrier())
            i.epochCounted = true;
    warp.startBatch(&code, &batch, &params);
    runAll();
    EXPECT_EQ(warp.ctaEpochs(), (std::vector<int>{2, 2, 2}));
}

TEST_F(WarpFixture, ScoreboardDelaysDependentInstructions)
{
    start(R"(
.kernel a
.param A
    mov r0, 1;
    add r1, r0, 2;
    exit;
)",
          1, 1, {0});
    // At cycle 0 the mov issues; the dependent add is not ready until
    // the ALU latency elapses.
    ASSERT_TRUE(warp.ready(0));
    warp.step(0);
    EXPECT_FALSE(warp.ready(1));
    EXPECT_TRUE(warp.ready(static_cast<Cycle>(gcfg.aluLatency)));
}

TEST_F(WarpFixture, EnqBlocksOnFullAtq)
{
    std::string src = ".kernel a\n.param A\n";
    for (int i = 0; i < 30; ++i)
        src += "enq.pred p0;\n";
    src += "exit;\n";
    start(src, 1, 1, {0});
    // Issue without ever cycling the engine: the ATQ (24) fills.
    int issued = 0;
    for (Cycle now = 0; now < 1000 && warp.ready(now); ++now) {
        warp.step(now);
        ++issued;
    }
    EXPECT_EQ(issued, dcfg.atqEntries);
    EXPECT_FALSE(warp.finished());
}

} // namespace
