/**
 * @file
 * Observability-layer tests (DESIGN.md §11): the DACSIM_* environment
 * registry, RunOptions::fromEnv(), exclusive stall attribution, the
 * counter-timeline ring, Chrome trace export, and the byte-exact
 * golden timeline fixture (refresh with DACSIM_UPDATE_GOLDEN=1).
 *
 * The core acceptance property: every idle issue slot is charged to
 * exactly one StallReason, so the per-reason counts sum to the idle
 * slots at every level of the (total, per-SM, per-warp) hierarchy —
 * and enabling any of it leaves the simulated results bit-identical.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "harness/runner.h"

namespace fs = std::filesystem;
using namespace dacsim;

namespace
{

using EnvVars = std::vector<std::pair<std::string, std::string>>;

// ---------------------------------------------------------------------
// Environment-knob registry
// ---------------------------------------------------------------------

TEST(EnvRegistry, DefaultsWithEmptyEnvironment)
{
    std::vector<std::string> warnings;
    Env e = parseEnv({}, &warnings);
    EXPECT_FALSE(e.trace);
    EXPECT_FALSE(e.lint);
    EXPECT_FALSE(e.updateGolden);
    EXPECT_EQ(e.jobs, 0);
    EXPECT_EQ(e.sweepAbortAfter, 0);
    EXPECT_EQ(e.faults, "");
    EXPECT_EQ(e.faultBenches, "");
    EXPECT_EQ(e.checkpointDir, "");
    EXPECT_TRUE(warnings.empty());
}

TEST(EnvRegistry, ParsesEveryKnob)
{
    std::vector<std::string> warnings;
    Env e = parseEnv(
        {
            {"DACSIM_TRACE", "1"},
            {"DACSIM_LINT", "true"}, // any non-'0' first char is true
            {"DACSIM_UPDATE_GOLDEN", "0"},
            {"DACSIM_JOBS", "7"},
            {"DACSIM_SWEEP_ABORT_AFTER", "12"},
            {"DACSIM_FAULTS", "mshr-drop@8192"},
            {"DACSIM_FAULT_BENCHES", "SP,BS"},
            {"DACSIM_CHECKPOINT_DIR", "/tmp/ckpt"},
        },
        &warnings);
    EXPECT_TRUE(e.trace);
    EXPECT_TRUE(e.lint);
    EXPECT_FALSE(e.updateGolden);
    EXPECT_EQ(e.jobs, 7);
    EXPECT_EQ(e.sweepAbortAfter, 12);
    EXPECT_EQ(e.faults, "mshr-drop@8192");
    EXPECT_EQ(e.faultBenches, "SP,BS");
    EXPECT_EQ(e.checkpointDir, "/tmp/ckpt");
    EXPECT_TRUE(warnings.empty());
}

TEST(EnvRegistry, MalformedIntegerWarnsAndKeepsDefault)
{
    std::vector<std::string> warnings;
    Env e = parseEnv({{"DACSIM_JOBS", "fast"}}, &warnings);
    EXPECT_EQ(e.jobs, 0);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("DACSIM_JOBS"), std::string::npos);
    EXPECT_NE(warnings[0].find("malformed"), std::string::npos);

    // Trailing garbage is rejected too (strict parse, not atoi).
    warnings.clear();
    e = parseEnv({{"DACSIM_SWEEP_ABORT_AFTER", "12x"}}, &warnings);
    EXPECT_EQ(e.sweepAbortAfter, 0);
    EXPECT_EQ(warnings.size(), 1u);
}

TEST(EnvRegistry, UnknownDacsimVariableWarns)
{
    std::vector<std::string> warnings;
    parseEnv({{"DACSIM_TYPO", "1"}}, &warnings);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("DACSIM_TYPO"), std::string::npos);

    // Non-DACSIM variables are none of our business.
    warnings.clear();
    parseEnv({{"PATH", "/bin"}, {"HOME", "/root"}}, &warnings);
    EXPECT_TRUE(warnings.empty());
}

TEST(EnvRegistry, NegativeCountsClampToOff)
{
    std::vector<std::string> warnings;
    Env e = parseEnv(
        {{"DACSIM_JOBS", "-3"}, {"DACSIM_SWEEP_ABORT_AFTER", "-1"}},
        &warnings);
    EXPECT_EQ(e.jobs, 0);
    EXPECT_EQ(e.sweepAbortAfter, 0);
    EXPECT_TRUE(warnings.empty());
}

TEST(EnvRegistry, FuzzKnobsParse)
{
    std::vector<std::string> warnings;
    Env e = parseEnv({{"DACSIM_FUZZ_SEEDS", "250"},
                      {"DACSIM_FUZZ_JOBS", "4"},
                      {"DACSIM_FUZZ_DIR", "/tmp/fz"},
                      {"DACSIM_FUZZ_TIMEOUT_MS", "1234"}},
                     &warnings);
    EXPECT_EQ(e.fuzzSeeds, 250);
    EXPECT_EQ(e.fuzzJobs, 4);
    EXPECT_EQ(e.fuzzDir, "/tmp/fz");
    EXPECT_EQ(e.fuzzTimeoutMs, 1234);
    EXPECT_TRUE(warnings.empty());
}

TEST(EnvRegistry, ServiceKnobsParse)
{
    std::vector<std::string> warnings;
    Env e = parseEnv({{"DACSIM_SERVICE_SOCKET", "/tmp/dacsimd.sock"},
                      {"DACSIM_SERVICE_DIR", "/tmp/svc"},
                      {"DACSIM_SERVICE_WORKERS", "4"},
                      {"DACSIM_SERVICE_TIMEOUT_MS", "2500"},
                      {"DACSIM_SERVICE_RETRIES", "0"},
                      {"DACSIM_SERVICE_CHAOS", "crash=0.2,seed=9"},
                      {"DACSIM_SERVICE_SHARDS",
                       "/tmp/s1.sock,/tmp/s2.sock"},
                      {"DACSIM_SERVICE_CLIENT", "sweeper"},
                      {"DACSIM_SERVICE_WEIGHT", "8"},
                      {"DACSIM_SERVICE_QUEUE_DEPTH", "32"}},
                     &warnings);
    EXPECT_EQ(e.serviceSocket, "/tmp/dacsimd.sock");
    EXPECT_EQ(e.serviceDir, "/tmp/svc");
    EXPECT_EQ(e.serviceWorkers, 4);
    EXPECT_EQ(e.serviceTimeoutMs, 2500);
    EXPECT_EQ(e.serviceRetries, 0);
    EXPECT_EQ(e.serviceChaos, "crash=0.2,seed=9");
    EXPECT_EQ(e.serviceShards, "/tmp/s1.sock,/tmp/s2.sock");
    EXPECT_EQ(e.serviceClient, "sweeper");
    EXPECT_EQ(e.serviceWeight, 8);
    EXPECT_EQ(e.serviceQueueDepth, 32);
    EXPECT_TRUE(warnings.empty());
}

TEST(EnvRegistry, HelpTextCoversEveryKnob)
{
    const std::string help = envHelpText();
    ASSERT_EQ(envRegistry().size(), 23u);
    for (const EnvKnob &k : envRegistry()) {
        EXPECT_NE(help.find(k.name), std::string::npos) << k.name;
        EXPECT_NE(help.find(k.help), std::string::npos) << k.name;
    }
}

TEST(EnvRegistry, FromEnvMirrorsProcessRegistry)
{
    // env() is parsed once from the real process environment; fromEnv
    // must agree with it knob for knob (checkpointing deliberately
    // stays off — parallel sweep jobs own that wiring).
    RunOptions opt = RunOptions::fromEnv();
    EXPECT_EQ(opt.lintAudit, env().lint);
    EXPECT_EQ(opt.faults.empty(), env().faults.empty());
    EXPECT_TRUE(opt.checkpoint.dir.empty());
    EXPECT_FALSE(opt.obs.enabled());
}

// ---------------------------------------------------------------------
// ObsOptions switch logic
// ---------------------------------------------------------------------

TEST(ObsOptions, SwitchDerivations)
{
    ObsOptions o;
    EXPECT_FALSE(o.enabled());
    o.stalls = true;
    EXPECT_TRUE(o.enabled());
    EXPECT_FALSE(o.timelineOn());
    EXPECT_FALSE(o.chromeOn());

    o = ObsOptions{};
    o.timelinePath = "x.json"; // a path implies sampling
    EXPECT_TRUE(o.timelineOn());
    EXPECT_TRUE(o.enabled());

    o = ObsOptions{};
    o.chromeTracePath = "x.trace.json";
    EXPECT_TRUE(o.chromeOn());
    EXPECT_TRUE(o.enabled());
}

// ---------------------------------------------------------------------
// Stall attribution
// ---------------------------------------------------------------------

/** Small machine, full workload scale: fast but still multi-SM. */
RunOptions
obsOpt(Technique tech)
{
    RunOptions opt;
    opt.tech = tech;
    opt.gpu.numSms = 2;
    opt.scale = 0.5;
    opt.obs.stalls = true;
    return opt;
}

void
expectExclusive(const StallStats &s)
{
    EXPECT_EQ(s.reasonSum(), s.idleSlots);
}

/** reasons and idleSlots of @p parts must sum field-wise to @p whole. */
void
expectPartition(const StallStats &whole,
                const std::vector<StallStats> &parts)
{
    StallStats sum;
    for (const StallStats &p : parts)
        sum.add(p);
    EXPECT_EQ(sum, whole);
}

void
checkStallHierarchy(const std::string &bench, Technique tech)
{
    SCOPED_TRACE(bench + "/" + techniqueName(tech));
    RunOutcome out = runWorkload(bench, obsOpt(tech));
    ASSERT_TRUE(out.ok()) << out.error.what;

    const ObsReport &r = out.obs;
    EXPECT_EQ(r.stalls, out.stats.stalls); // finalize folded them in
    EXPECT_GT(r.stalls.idleSlots, 0u);
    expectExclusive(r.stalls);
    expectPartition(r.stalls, r.smStalls);

    const std::size_t stride =
        static_cast<std::size_t>(r.maxWarpsPerSm) + 1;
    ASSERT_EQ(r.warpStalls.size(), r.smStalls.size() * stride);
    for (std::size_t sm = 0; sm < r.smStalls.size(); ++sm) {
        SCOPED_TRACE("sm " + std::to_string(sm));
        expectExclusive(r.smStalls[sm]);
        std::vector<StallStats> warps(
            r.warpStalls.begin() +
                static_cast<std::ptrdiff_t>(sm * stride),
            r.warpStalls.begin() +
                static_cast<std::ptrdiff_t>((sm + 1) * stride));
        expectPartition(r.smStalls[sm], warps);
    }

    // No fetch stage and no separate SIMT-sync stall in this model.
    EXPECT_EQ(r.stalls[StallReason::Sync], 0u);
    EXPECT_EQ(r.stalls[StallReason::Icache], 0u);
    if (tech == Technique::Baseline) {
        // DAC queues do not exist on the baseline machine.
        EXPECT_EQ(r.stalls[StallReason::DacQueueEmpty], 0u);
        EXPECT_EQ(r.stalls[StallReason::DacQueueFull], 0u);
    }
}

TEST(StallAttribution, ExclusivePartitionBaselineCompute)
{
    checkStallHierarchy("BS", Technique::Baseline);
}

TEST(StallAttribution, ExclusivePartitionBaselineMemory)
{
    checkStallHierarchy("SP", Technique::Baseline);
}

TEST(StallAttribution, ExclusivePartitionDacCompute)
{
    checkStallHierarchy("BS", Technique::Dac);
}

TEST(StallAttribution, ExclusivePartitionDacMemory)
{
    checkStallHierarchy("SP", Technique::Dac);
}

TEST(StallAttribution, DeterministicAcrossRuns)
{
    RunOutcome a = runWorkload("SP", obsOpt(Technique::Dac));
    RunOutcome b = runWorkload("SP", obsOpt(Technique::Dac));
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.obs.stalls, b.obs.stalls);
    EXPECT_EQ(a.obs.smStalls, b.obs.smStalls);
    EXPECT_EQ(a.obs.warpStalls, b.obs.warpStalls);
    EXPECT_TRUE(a.stats == b.stats);
}

TEST(StallAttribution, ObservingDoesNotPerturbSimulation)
{
    RunOptions plain;
    plain.tech = Technique::Dac;
    plain.gpu.numSms = 2;
    plain.scale = 0.5;
    RunOptions observed = plain;
    observed.obs.stalls = true;
    observed.obs.timeline = true;

    RunOutcome off = runWorkload("SP", plain);
    RunOutcome on = runWorkload("SP", observed);
    ASSERT_TRUE(off.ok() && on.ok());

    // Stall attribution forces per-cycle stepping (no fast-forward),
    // so compare the authoritative visitStats() field list — the
    // diagnostic `stalls` member legitimately differs.
    std::vector<std::pair<std::string, std::uint64_t>> a, b;
    visitStats(off.stats, [&](const char *n, auto v) {
        a.emplace_back(n, static_cast<std::uint64_t>(v));
    });
    visitStats(on.stats, [&](const char *n, auto v) {
        b.emplace_back(n, static_cast<std::uint64_t>(v));
    });
    EXPECT_EQ(a, b);
    EXPECT_EQ(off.checksums, on.checksums);
    EXPECT_EQ(off.hashChain, on.hashChain);
    EXPECT_EQ(off.stats.stalls.idleSlots, 0u); // off: never charged
}

// ---------------------------------------------------------------------
// Counter timeline
// ---------------------------------------------------------------------

TEST(Timeline, SamplesAtBoundariesAndRunEnd)
{
    RunOptions opt = obsOpt(Technique::Dac);
    opt.obs.timeline = true;
    RunOutcome out = runWorkload("SP", opt);
    ASSERT_TRUE(out.ok());
    const std::vector<TimelineSample> &tl = out.obs.timeline;
    ASSERT_FALSE(tl.empty());
    for (std::size_t i = 1; i < tl.size(); ++i)
        EXPECT_LT(tl[i - 1].cycle, tl[i].cycle);
    EXPECT_EQ(tl.back().cycle, out.stats.cycles);
    EXPECT_EQ(tl.back().warpInsts, out.stats.totalWarpInsts());
    EXPECT_EQ(out.obs.timelineDropped, 0u);
    // The run has drained: no queued DAC work can survive the end.
    EXPECT_EQ(tl.back().atq, 0);
    EXPECT_EQ(tl.back().pwaq, 0);
    EXPECT_EQ(tl.back().pwpq, 0);
}

TEST(Timeline, RingOverwritesOldestWhenFull)
{
    RunOptions opt = obsOpt(Technique::Dac);
    opt.obs.timeline = true;
    opt.obs.timelineCapacity = 3;
    RunOutcome out = runWorkload("SP", opt);
    ASSERT_TRUE(out.ok());

    RunOptions full = obsOpt(Technique::Dac);
    full.obs.timeline = true;
    RunOutcome ref = runWorkload("SP", full);
    ASSERT_TRUE(ref.ok());
    ASSERT_GT(ref.obs.timeline.size(), 3u) << "run too short to clip";

    // The ring keeps the newest 3 samples, oldest first, and counts
    // every overwrite.
    ASSERT_EQ(out.obs.timeline.size(), 3u);
    EXPECT_EQ(out.obs.timelineDropped, ref.obs.timeline.size() - 3u);
    std::vector<TimelineSample> tail(ref.obs.timeline.end() - 3,
                                     ref.obs.timeline.end());
    EXPECT_EQ(out.obs.timeline, tail);
}

TEST(Timeline, EveryNthBoundaryThinsSampling)
{
    RunOptions opt = obsOpt(Technique::Dac);
    opt.obs.timeline = true;
    opt.obs.timelineEveryBoundaries = 4;
    RunOutcome sparse = runWorkload("SP", opt);
    opt.obs.timelineEveryBoundaries = 1;
    RunOutcome dense = runWorkload("SP", opt);
    ASSERT_TRUE(sparse.ok() && dense.ok());
    EXPECT_LT(sparse.obs.timeline.size(), dense.obs.timeline.size());
    // Thinned samples are a subset of the dense ones (same boundaries).
    for (const TimelineSample &t : sparse.obs.timeline) {
        bool found = false;
        for (const TimelineSample &d : dense.obs.timeline)
            if (d == t)
                found = true;
        EXPECT_TRUE(found) << "cycle " << t.cycle;
    }
}

// ---------------------------------------------------------------------
// JSON outputs
// ---------------------------------------------------------------------

/** Per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = std::string("dacsim_obs_") +
                           info->test_suite_name() + "_" + info->name();
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        path = fs::temp_directory_path() / name;
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Structural JSON check without a parser: every brace/bracket outside
 * a string literal balances, and the nesting closes exactly at the
 * final byte. Catches truncation and comma/quote slips in the
 * hand-rolled writers.
 */
void
expectBalancedJson(const std::string &text)
{
    std::vector<char> stack;
    bool inString = false, escaped = false;
    for (char c : text) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (inString) {
            if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '{': stack.push_back('}'); break;
          case '[': stack.push_back(']'); break;
          case '}':
          case ']':
            ASSERT_FALSE(stack.empty()) << "unbalanced " << c;
            ASSERT_EQ(stack.back(), c);
            stack.pop_back();
            break;
          default: break;
        }
    }
    EXPECT_FALSE(inString);
    EXPECT_TRUE(stack.empty()) << stack.size() << " unclosed scopes";
    EXPECT_EQ(text.front(), '{');
}

TEST(ChromeTrace, WellFormedAndPopulated)
{
    TempDir tmp;
    RunOptions opt = obsOpt(Technique::Dac);
    opt.obs.chromeTracePath = (tmp.path / "sp.trace.json").string();
    RunOutcome out = runWorkload("SP", opt);
    ASSERT_TRUE(out.ok());
    EXPECT_GT(out.obs.traceEvents, 0u);

    std::string text = slurp(opt.obs.chromeTracePath);
    ASSERT_FALSE(text.empty());
    expectBalancedJson(text);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    // The three streams: issue spans, affine runahead, memory spans.
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"runahead\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"b\""), std::string::npos);
    // Thread metadata names each scheduler and the affine warp.
    EXPECT_NE(text.find("\"affine warp\""), std::string::npos);
}

TEST(ChromeTrace, DeterministicBytes)
{
    TempDir tmp;
    RunOptions opt = obsOpt(Technique::Dac);
    opt.obs.chromeTracePath = (tmp.path / "a.trace.json").string();
    ASSERT_TRUE(runWorkload("BS", opt).ok());
    std::string a = slurp(opt.obs.chromeTracePath);
    opt.obs.chromeTracePath = (tmp.path / "b.trace.json").string();
    ASSERT_TRUE(runWorkload("BS", opt).ok());
    EXPECT_EQ(a, slurp(opt.obs.chromeTracePath));
}

TEST(TimelineJson, WellFormed)
{
    TempDir tmp;
    RunOptions opt = obsOpt(Technique::Dac);
    opt.obs.timelinePath = (tmp.path / "sp.timeline.json").string();
    RunOutcome out = runWorkload("SP", opt);
    ASSERT_TRUE(out.ok());
    std::string text = slurp(opt.obs.timelinePath);
    ASSERT_FALSE(text.empty());
    expectBalancedJson(text);
    EXPECT_NE(text.find("\"dacsim-obs-timeline-v1\""), std::string::npos);
    EXPECT_NE(text.find("\"per_sm\""), std::string::npos);
    EXPECT_NE(text.find("\"per_warp\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Golden timeline fixture
// ---------------------------------------------------------------------

/**
 * Byte-exact fixture for the timeline+stalls JSON, produced with the
 * exact options the fig16 driver uses for `--only SP --timeline ...`
 * (default machine, figure scale, DAC): scripts/check.sh cmp's the
 * driver's output against the same file. Regenerate with
 * DACSIM_UPDATE_GOLDEN=1 after an intentional change.
 */
TEST(ObsGolden, TimelineSpDacBytes)
{
    TempDir tmp;
    RunOptions opt;
    opt.tech = Technique::Dac;
    opt.scale = 1.0; // bench::figureScale
    opt.obs.stalls = true;
    opt.obs.timelinePath = (tmp.path / "live.json").string();
    RunOutcome out = runWorkload("SP", opt);
    ASSERT_TRUE(out.ok()) << out.error.what;
    std::string live = slurp(opt.obs.timelinePath);
    ASSERT_FALSE(live.empty());

    std::string path =
        std::string(DACSIM_GOLDEN_DIR) + "/obs_timeline_SP_DAC.json";
    if (env().updateGolden) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        os << live;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; regenerate with DACSIM_UPDATE_GOLDEN=1";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(live, want.str())
        << "obs timeline drifted from " << path
        << "; regenerate with DACSIM_UPDATE_GOLDEN=1 if intentional";
}

} // namespace
