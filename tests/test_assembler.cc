/**
 * @file
 * Assembler unit tests: syntax acceptance, operand forms, label
 * resolution, error reporting, and disassembly stability.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/assembler.h"

using namespace dacsim;

namespace
{

Kernel
asm1(const std::string &body)
{
    return assemble(".kernel t\n.param A B n\n" + body + "\nexit;\n");
}

TEST(Assembler, ParsesKernelHeader)
{
    Kernel k = assemble(".kernel foo\n.param x y\n.shared 128\nexit;\n");
    EXPECT_EQ(k.name, "foo");
    EXPECT_EQ(k.params, (std::vector<std::string>{"x", "y"}));
    EXPECT_EQ(k.sharedBytes, 128);
    ASSERT_EQ(k.numInsts(), 1);
    EXPECT_TRUE(k.insts[0].isExit());
}

TEST(Assembler, CountsRegistersAndPredicates)
{
    Kernel k = asm1("mov r7, 4;\nsetp.lt p2, r7, 9;");
    EXPECT_EQ(k.numRegs, 8);
    EXPECT_EQ(k.numPreds, 3);
}

TEST(Assembler, AluOperandKinds)
{
    Kernel k = asm1("add r0, tid.x, $A;\nmul r1, r0, -12;");
    EXPECT_EQ(k.insts[0].op, Opcode::Add);
    EXPECT_TRUE(k.insts[0].src[0].isSpecial());
    EXPECT_EQ(k.insts[0].src[0].sreg, SpecialReg::TidX);
    EXPECT_TRUE(k.insts[0].src[1].isParam());
    EXPECT_EQ(k.insts[0].src[1].index, 0);
    EXPECT_TRUE(k.insts[1].src[1].isImm());
    EXPECT_EQ(k.insts[1].src[1].imm, -12);
}

TEST(Assembler, HexImmediates)
{
    Kernel k = asm1("mov r0, 0x1f;\nmov r1, -0x10;");
    EXPECT_EQ(k.insts[0].src[0].imm, 31);
    EXPECT_EQ(k.insts[1].src[0].imm, -16);
}

TEST(Assembler, AllSpecialRegisters)
{
    Kernel k = asm1("add r0, tid.y, tid.z;\n"
                    "add r1, ntid.x, ntid.y;\n"
                    "add r2, ctaid.y, ctaid.z;\n"
                    "add r3, nctaid.x, nctaid.z;");
    EXPECT_EQ(k.insts[0].src[0].sreg, SpecialReg::TidY);
    EXPECT_EQ(k.insts[0].src[1].sreg, SpecialReg::TidZ);
    EXPECT_EQ(k.insts[1].src[0].sreg, SpecialReg::NtidX);
    EXPECT_EQ(k.insts[2].src[1].sreg, SpecialReg::CtaidZ);
    EXPECT_EQ(k.insts[3].src[1].sreg, SpecialReg::NctaidZ);
}

TEST(Assembler, MemoryOperands)
{
    Kernel k = asm1("ld.global.u32 r1, [r0];\n"
                    "ld.global.u32 r2, [r0+64];\n"
                    "ld.global.u32 r3, [r0-4];\n"
                    "st.shared.u16 [r1+2], r3;");
    EXPECT_EQ(k.insts[0].addrOffset, 0);
    EXPECT_EQ(k.insts[1].addrOffset, 64);
    EXPECT_EQ(k.insts[2].addrOffset, -4);
    EXPECT_EQ(k.insts[3].space, MemSpace::Shared);
    EXPECT_EQ(k.insts[3].width, MemWidth::U16);
}

TEST(Assembler, MemoryWidths)
{
    Kernel k = asm1("ld.global.u8 r1, [r0];\n"
                    "ld.global.s16 r2, [r0];\n"
                    "ld.global.u64 r3, [r0];\n"
                    "ld.global.s32 r4, [r0];\n"
                    "ld.global r5, [r0];");
    EXPECT_EQ(k.insts[0].width, MemWidth::U8);
    EXPECT_EQ(k.insts[1].width, MemWidth::S16);
    EXPECT_EQ(k.insts[2].width, MemWidth::U64);
    EXPECT_EQ(k.insts[3].width, MemWidth::S32);
    EXPECT_EQ(k.insts[4].width, MemWidth::U32); // default
}

TEST(Assembler, LocalSpaceAliasesGlobal)
{
    Kernel k = asm1("ld.local.u32 r1, [r0];");
    EXPECT_EQ(k.insts[0].space, MemSpace::Global);
}

TEST(Assembler, LabelsAndBranches)
{
    Kernel k = asm1("mov r0, 0;\nL1:\nadd r0, r0, 1;\nsetp.lt p0, r0, 5;\n"
                    "@p0 bra L1;\n@!p0 bra L2;\nL2:\nmov r1, r0;");
    EXPECT_EQ(k.insts[3].op, Opcode::Bra);
    EXPECT_EQ(k.insts[3].target, 1);
    EXPECT_EQ(k.insts[3].guardPred, 0);
    EXPECT_FALSE(k.insts[3].guardNeg);
    EXPECT_TRUE(k.insts[4].guardNeg);
    EXPECT_EQ(k.insts[4].target, 5);
}

TEST(Assembler, ForwardBranch)
{
    Kernel k = asm1("bra DONE;\nmov r0, 1;\nDONE:\nmov r1, 2;");
    EXPECT_EQ(k.insts[0].target, 2);
    EXPECT_EQ(k.insts[0].guardPred, -1);
}

TEST(Assembler, GuardedAlu)
{
    Kernel k = asm1("setp.eq p1, r0, 0;\n@p1 add r0, r0, 1;");
    EXPECT_EQ(k.insts[1].guardPred, 1);
    EXPECT_EQ(k.insts[1].op, Opcode::Add);
}

TEST(Assembler, SetpComparisons)
{
    Kernel k = asm1("setp.eq p0, r0, r1;\nsetp.ne p0, r0, r1;\n"
                    "setp.lt p0, r0, r1;\nsetp.le p0, r0, r1;\n"
                    "setp.gt p0, r0, r1;\nsetp.ge p0, r0, r1;");
    EXPECT_EQ(k.insts[0].cmp, CmpOp::Eq);
    EXPECT_EQ(k.insts[1].cmp, CmpOp::Ne);
    EXPECT_EQ(k.insts[2].cmp, CmpOp::Lt);
    EXPECT_EQ(k.insts[3].cmp, CmpOp::Le);
    EXPECT_EQ(k.insts[4].cmp, CmpOp::Gt);
    EXPECT_EQ(k.insts[5].cmp, CmpOp::Ge);
}

TEST(Assembler, SelAndMad)
{
    Kernel k = asm1("setp.lt p0, r0, r1;\nsel r2, r0, r1, p0;\n"
                    "mad r3, r0, r1, r2;");
    EXPECT_EQ(k.insts[1].op, Opcode::Sel);
    EXPECT_TRUE(k.insts[1].src[2].isPred());
    EXPECT_EQ(k.insts[2].op, Opcode::Mad);
}

TEST(Assembler, DacInstructionForms)
{
    Kernel k = asm1("enq.data.u32 [r0+8];\nenq.addr.u64 [r1];\n"
                    "setp.lt p0, r0, r1;\nenq.pred p0;\n"
                    "ld.deq.u32 r2;\nst.deq.u32 r3;\ndeq.pred p1;");
    EXPECT_EQ(k.insts[0].op, Opcode::EnqData);
    EXPECT_EQ(k.insts[0].addrOffset, 8);
    EXPECT_EQ(k.insts[1].op, Opcode::EnqAddr);
    EXPECT_EQ(k.insts[1].width, MemWidth::U64);
    EXPECT_EQ(k.insts[3].op, Opcode::EnqPred);
    EXPECT_EQ(k.insts[4].op, Opcode::LdDeq);
    EXPECT_EQ(k.insts[5].op, Opcode::StDeq);
    EXPECT_EQ(k.insts[6].op, Opcode::DeqPred);
    EXPECT_TRUE(k.insts[6].dst.isPred());
}

TEST(Assembler, CommentsAndMultiStatementLines)
{
    Kernel k = asm1("mov r0, 1; add r1, r0, 2; // trailing comment\n"
                    "// whole-line comment\n"
                    "sub r2, r1, r0;");
    EXPECT_EQ(k.numInsts(), 4); // 3 + exit
}

TEST(Assembler, BarParses)
{
    Kernel k = asm1("bar;");
    EXPECT_TRUE(k.insts[0].isBarrier());
    EXPECT_FALSE(k.insts[0].epochCounted);
}

// ----- error cases ---------------------------------------------------------

TEST(AssemblerErrors, UndeclaredParam)
{
    EXPECT_THROW(asm1("mov r0, $zzz;"), FatalError);
}

TEST(AssemblerErrors, UndefinedLabel)
{
    EXPECT_THROW(asm1("bra NOWHERE;"), FatalError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(asm1("X:\nmov r0, 1;\nX:\nmov r1, 2;"), FatalError);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_THROW(asm1("add r0, r1;"), FatalError);
    EXPECT_THROW(asm1("mov r0, r1, r2;"), FatalError);
}

TEST(AssemblerErrors, BadDestination)
{
    EXPECT_THROW(asm1("add p0, r1, r2;"), FatalError);
    EXPECT_THROW(asm1("setp.lt r0, r1, r2;"), FatalError);
}

TEST(AssemblerErrors, SetpNeedsComparison)
{
    EXPECT_THROW(asm1("setp p0, r1, r2;"), FatalError);
}

TEST(AssemblerErrors, BadMemoryOperand)
{
    EXPECT_THROW(asm1("ld.global.u32 r0, r1;"), FatalError);
    EXPECT_THROW(asm1("ld.global.u32 r0, [r1+x];"), FatalError);
}

TEST(AssemblerErrors, BadWidth)
{
    EXPECT_THROW(asm1("ld.global.u17 r0, [r1];"), FatalError);
}

TEST(AssemblerErrors, UnknownInstruction)
{
    EXPECT_THROW(asm1("frobnicate r0, r1;"), FatalError);
}

TEST(AssemblerErrors, MissingExit)
{
    EXPECT_THROW(assemble(".kernel t\nmov r0, 1;\n"), FatalError);
}

TEST(AssemblerErrors, GuardMustBePredicate)
{
    EXPECT_THROW(asm1("@r0 bra X;\nX:\nmov r0, 1;"), FatalError);
}

TEST(Assembler, DisassemblyRoundTrips)
{
    const char *src = R"(
.kernel rt
.param A n
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
LOOP:
    shl r2, r1, 2;
    add r3, $A, r2;
    ld.global.u32 r4, [r3+4];
    max r5, r4, 0;
    st.global.u32 [r3], r5;
    setp.lt p0, r1, $n;
    @p0 bra LOOP;
    exit;
)";
    Kernel k1 = assemble(src);
    // Disassemble, strip the header line, and re-assemble: the result
    // must be structurally identical.
    std::string dis = k1.disassemble();
    std::string body;
    bool first = true;
    for (std::size_t pos = 0; pos < dis.size();) {
        std::size_t nl = dis.find('\n', pos);
        std::string line = dis.substr(pos, nl - pos);
        pos = nl + 1;
        if (first) {
            first = false;
            continue;
        }
        // Instruction lines look like "  12: add r1, ...".
        std::size_t colon = line.find(": ");
        if (line.size() > 2 && line[2] != ' ' &&
            colon == std::string::npos) {
            body += line + "\n"; // label line
        } else if (colon != std::string::npos) {
            std::string inst = line.substr(colon + 2);
            // Branch targets disassemble as raw PCs; tag them.
            if (inst.rfind("bra ", 0) == 0 ||
                inst.find(" bra ") != std::string::npos) {
                continue; // skip branches (numeric targets)
            }
            body += inst + ";\n";
        }
    }
    // At minimum the disassembly must mention every opcode used.
    EXPECT_NE(dis.find("ld.global.u32 r4, [r3+4]"), std::string::npos);
    EXPECT_NE(dis.find("max r5, r4, 0"), std::string::npos);
    EXPECT_NE(dis.find("setp.lt p0, r1, $n"), std::string::npos);
    EXPECT_NE(dis.find("@p0 bra 2"), std::string::npos);
}

// ----- hardening smoke ----------------------------------------------------
// Malformed and truncated sources must produce a structured FatalError
// with a diagnostic — never a crash, never silent acceptance. These are
// the inputs a fuzzer or a hand-edited .ptxasm file is most likely to
// produce.

TEST(AssemblerHardening, MalformedInputsGiveStructuredErrors)
{
    const struct
    {
        const char *label;
        const char *source;
    } cases[] = {
        {"empty source", ""},
        {"whitespace only", "\n   \n\t\n"},
        {"instruction before .kernel", "mov r0, 1;\nexit;\n"},
        {".kernel without a name", ".kernel\n.param a\nexit;\n"},
        {"duplicate .kernel", ".kernel t\n.kernel u\n.param a\nexit;\n"},
        {".param before .kernel", ".param a\n.kernel t\nexit;\n"},
        {"no instructions", ".kernel t\n.param a\n"},
        {"missing final exit", ".kernel t\n.param a\nmov r0, 1;\n"},
        {"truncated mid-instruction", ".kernel t\n.param a\nmov r0"},
        {"truncated mid-opcode", ".kernel t\n.param a\nld.glo"},
        {"missing source operand", ".kernel t\n.param a\nmov r0,;\nexit;\n"},
        {"missing destination", ".kernel t\n.param a\nmov , 1;\nexit;\n"},
        {"missing comma", ".kernel t\n.param a\nmov r0 1;\nexit;\n"},
        {"missing semicolon", ".kernel t\n.param a\nexit\n"},
        {"undefined branch target", ".kernel t\n.param a\nbra nowhere;\nexit;\n"},
        {"duplicate label", ".kernel t\n.param a\nX:\nX:\nexit;\n"},
        {"unterminated mem operand",
         ".kernel t\n.param a\nld.global.u32 r0, [r1;\nexit;\n"},
        {"garbage mem displacement",
         ".kernel t\n.param a\nld.global.u32 r0, [r1+zz];\nexit;\n"},
        {"bare param sigil", ".kernel t\n.param a\nmov r0, $;\nexit;\n"},
        {"unknown param", ".kernel t\n.param a\nmov r0, $zz;\nexit;\n"},
        {"unknown special register",
         ".kernel t\n.param a\nmov r0, tid.w;\nexit;\n"},
        {"empty guard", ".kernel t\n.param a\n@ mov r0, 1;\nexit;\n"},
        {"guard on a register",
         ".kernel t\n.param a\n@r0 mov r0, 1;\nexit;\n"},
        {"bad setp comparison",
         ".kernel t\n.param a\nsetp.zz p0, r0, r1;\nexit;\n"},
        {"non-numeric .shared",
         ".kernel t\n.param a\n.shared lots\nexit;\n"},
        {"binary garbage", "\x01\x02\xff\xfe\x7f{];;@@\x03"},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.label);
        try {
            assemble(c.source);
            ADD_FAILURE() << "silently accepted: " << c.label;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find_first_not_of(" \t\n"),
                      std::string::npos)
                << "diagnostic must not be empty";
        } catch (const std::exception &e) {
            ADD_FAILURE() << "unstructured error (" << e.what()
                          << ") for: " << c.label;
        }
    }
}

} // namespace
