/**
 * @file
 * Tests of the kernel-IR static-analysis framework (DESIGN.md §10):
 * the supporting analyses (dominators, liveness, address expressions),
 * each checker with at least one positive and one negative case, the
 * `lint:allow` suppression pragma, report determinism, the decoupler
 * soundness auditor (including agreement with decoupler.cc over every
 * registered workload), and golden lint-report fixtures for two
 * workloads (text + JSON), refreshable with DACSIM_UPDATE_GOLDEN=1.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/checkers.h"
#include "analysis/pass_manager.h"
#include "analysis/soundness.h"
#include "common/env.h"
#include "compiler/decoupler.h"
#include "isa/assembler.h"
#include "workloads/workload.h"

using namespace dacsim;

namespace
{

LintReport
lint(const std::string &src, LaunchBoundsHint launch = {})
{
    PassManager pm = PassManager::withAllCheckers();
    return pm.run(assemble(src), DacConfig{}, launch);
}

int
countRule(const LintReport &rep, const std::string &rule,
          bool suppressed = false)
{
    int n = 0;
    for (const Diagnostic &d : rep.findings)
        if (d.rule == rule && d.suppressed == suppressed)
            ++n;
    return n;
}

/** Prepare one workload at test scale and lint it with launch bounds. */
LintReport
lintWorkload(const std::string &name)
{
    GpuMemory gmem;
    PreparedWorkload prep = findWorkload(name).prepare(gmem, 0.05);
    PassManager pm = PassManager::withAllCheckers();
    AnalysisContext ctx(prep.kernel, DacConfig{}, {true, prep.block});
    return pm.run(ctx);
}

// ---------------------------------------------------------------------------
// Supporting analyses.
// ---------------------------------------------------------------------------

TEST(DomTree, DiamondDominance)
{
    Kernel k = assemble(R"(
.kernel t
    mov r0, tid.x;
    setp.lt p0, r0, 7;
    @p0 bra ELSE;
    mov r1, 1;
    bra JOIN;
ELSE:
    mov r1, 2;
JOIN:
    exit;
)");
    AnalysisContext ctx(k, DacConfig{});
    const DomTree &dom = ctx.dom();
    int head = ctx.cfg().blockOf(0);
    int thenB = ctx.cfg().blockOf(3);
    int elseB = ctx.cfg().blockOf(5);
    int join = ctx.cfg().blockOf(6);
    EXPECT_EQ(dom.idom(thenB), head);
    EXPECT_EQ(dom.idom(elseB), head);
    EXPECT_EQ(dom.idom(join), head); // neither arm dominates the join
    EXPECT_TRUE(dom.dominates(head, join));
    EXPECT_FALSE(dom.dominates(thenB, join));
    EXPECT_TRUE(dom.reachable(elseB));
}

TEST(DomTree, UnreachableBlock)
{
    Kernel k = assemble(R"(
.kernel t
    bra END;
    mov r0, 1;
END:
    exit;
)");
    AnalysisContext ctx(k, DacConfig{});
    int deadB = ctx.cfg().blockOf(1);
    EXPECT_FALSE(ctx.dom().reachable(deadB));
    EXPECT_EQ(ctx.dom().idom(deadB), -1);
    EXPECT_FALSE(ctx.dom().dominates(0, deadB));
}

TEST(Liveness, DeadAndLiveResults)
{
    Kernel k = assemble(R"(
.kernel t
.param out
    mov r0, 1;
    mov r1, 2;
    add r2, $out, 0;
    st.global.u32 [r2], r1;
    exit;
)");
    AnalysisContext ctx(k, DacConfig{});
    EXPECT_FALSE(ctx.liveness().liveOutReg(0, 0)); // r0 never read
    EXPECT_TRUE(ctx.liveness().liveOutReg(1, 1));  // r1 stored later
    EXPECT_TRUE(ctx.liveness().liveOutReg(2, 2));  // address
    EXPECT_FALSE(ctx.liveness().liveOutReg(3, 1)); // dead after the store
}

TEST(AddrExpr, AffineAddressForm)
{
    Kernel k = assemble(R"(
.kernel t
.param out
    shl r1, tid.x, 2;
    add r2, $out, r1;
    st.global.u32 [r2], 0;
    exit;
)");
    AnalysisContext ctx(k, DacConfig{});
    AddrExpr e = ctx.addr().addrOf(2);
    ASSERT_TRUE(e.known);
    EXPECT_TRUE(e.bounded);
    EXPECT_EQ(e.tid[0], 4);
    EXPECT_EQ(e.tid[1], 0);
    ASSERT_EQ(e.sym.size(), 1u);
    EXPECT_EQ(e.sym.begin()->first, 0); // param slot 0
    EXPECT_EQ(e.sym.begin()->second, 1);
    EXPECT_EQ(e.lo, 0);
    EXPECT_EQ(e.hi, 0);
}

TEST(AddrExpr, AndMaskBoundsDataDependentIndex)
{
    Kernel k = assemble(R"(
.kernel t
.param in
.shared 64
    add r0, $in, 0;
    ld.global.u32 r1, [r0];
    and r2, r1, 7;
    shl r3, r2, 2;
    st.shared.u32 [r3], 1;
    exit;
)");
    AnalysisContext ctx(k, DacConfig{});
    AddrExpr e = ctx.addr().addrOf(4);
    ASSERT_TRUE(e.known);
    EXPECT_TRUE(e.bounded);
    EXPECT_TRUE(e.pureInterval());
    EXPECT_EQ(e.lo, 0);
    EXPECT_EQ(e.hi, 28);
}

TEST(AddrExpr, LaneConflictPredicate)
{
    AddrExpr a;
    a.known = true;
    a.tid[0] = 4; // 4*tid.x
    AddrExpr b = a;
    Dim3 block{128, 1, 1};
    // Equal unit-stride lanes never overlap.
    EXPECT_FALSE(mayConflictAcrossLanes(a, 4, b, 4, &block));
    // A two-byte offset makes neighbouring lanes overlap.
    b.lo = b.hi = 2;
    EXPECT_TRUE(mayConflictAcrossLanes(a, 4, b, 4, &block));
    // Unknown addresses are conservatively conflicting.
    EXPECT_TRUE(mayConflictAcrossLanes(AddrExpr::unknown(), 4, a, 4,
                                       &block));
}

// ---------------------------------------------------------------------------
// DAC-W001: possibly-uninitialized reads.
// ---------------------------------------------------------------------------

TEST(Checkers, UninitReadPositive)
{
    LintReport rep = lint(R"(
.kernel t
.param out
    add r1, r0, 1;
    add r2, $out, 0;
    st.global.u32 [r2], r1;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-W001"), 1);
    EXPECT_EQ(rep.findings[0].pc, 0);
}

TEST(Checkers, UninitReadNegative)
{
    LintReport rep = lint(R"(
.kernel t
.param out
    mov r0, 5;
    add r1, r0, 1;
    add r2, $out, 0;
    st.global.u32 [r2], r1;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-W001"), 0);
}

// ---------------------------------------------------------------------------
// DAC-E002: barrier divergence.
// ---------------------------------------------------------------------------

TEST(Checkers, BarrierUnderDivergentBranchIsError)
{
    LintReport rep = lint(R"(
.kernel t
    mov r0, tid.x;
    setp.lt p0, r0, 7;
    @p0 bra SKIP;
    bar;
SKIP:
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-E002"), 1);
    EXPECT_GE(rep.numErrors, 1);
    EXPECT_FALSE(rep.clean());
}

TEST(Checkers, BarrierInUniformLoopIsClean)
{
    LintReport rep = lint(R"(
.kernel t
    mov r0, 0;
LOOP:
    bar;
    add r0, r0, 1;
    setp.lt p0, r0, 3;
    @p0 bra LOOP;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-E002"), 0);
    EXPECT_TRUE(rep.clean());
}

TEST(Checkers, GuardPredicatedBarrierIsError)
{
    LintReport rep = lint(R"(
.kernel t
    mov r0, tid.x;
    setp.lt p0, r0, 7;
    @p0 bar;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-E002"), 1);
}

// ---------------------------------------------------------------------------
// DAC-W003: shared-memory races.
// ---------------------------------------------------------------------------

TEST(Checkers, SharedStoreSameAddressRaces)
{
    LintReport rep = lint(R"(
.kernel t
.shared 64
    mov r0, 0;
    st.shared.u32 [r0], 1;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-W003"), 1);
}

TEST(Checkers, StridedPrivateSharedStoreIsClean)
{
    // The 1-D launch bound matters: with an unknown (possibly 2-D)
    // block, two threads could share a tid.x and collide.
    LintReport rep = lint(R"(
.kernel t
.shared 1024
    shl r1, tid.x, 2;
    st.shared.u32 [r1], 1;
    ld.shared.u32 r2, [r1];
    exit;
)",
                          {true, {128, 1, 1}});
    EXPECT_EQ(countRule(rep, "DAC-W003"), 0);
}

TEST(Checkers, UnknownLaunchIsConservative)
{
    // Same kernel, no launch hint: a 2-D block would make lanes with
    // equal tid.x collide, so the checker must warn.
    LintReport rep = lint(R"(
.kernel t
.shared 1024
    shl r1, tid.x, 2;
    st.shared.u32 [r1], 1;
    ld.shared.u32 r2, [r1];
    exit;
)");
    EXPECT_GE(countRule(rep, "DAC-W003"), 1);
}

TEST(Checkers, BarrierSeparatesNeighbourExchange)
{
    const char *body = R"(
    shl r1, tid.x, 2;
    st.shared.u32 [r1], 1;
    %s
    add r2, r1, 4;
    ld.shared.u32 r3, [r2];
    exit;
)";
    auto make = [&](const char *sync) {
        char buf[512];
        std::snprintf(buf, sizeof buf, body, sync);
        return std::string(".kernel t\n.shared 1024\n") + buf;
    };
    LaunchBoundsHint launch{true, {128, 1, 1}};
    // Without a barrier the neighbour read races with the store...
    EXPECT_EQ(countRule(lint(make("mov r9, 0;"), launch), "DAC-W003"), 1);
    // ...and the bar separates the intervals.
    EXPECT_EQ(countRule(lint(make("bar;"), launch), "DAC-W003"), 0);
}

// ---------------------------------------------------------------------------
// DAC-W004 / DAC-W005: dead code.
// ---------------------------------------------------------------------------

TEST(Checkers, UnreachableBlockReported)
{
    LintReport rep = lint(R"(
.kernel t
    bra END;
    mov r0, 1;
END:
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-W004"), 1);
    // The unreachable instruction is not double-reported as dead.
    EXPECT_EQ(countRule(rep, "DAC-W005"), 0);
}

TEST(Checkers, DeadStoreReported)
{
    LintReport rep = lint(R"(
.kernel t
.param out
    mov r0, 1;
    mov r1, 2;
    add r2, $out, 0;
    st.global.u32 [r2], r1;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-W005"), 1);
    EXPECT_EQ(countRule(rep, "DAC-W004"), 0);
    ASSERT_FALSE(rep.findings.empty());
    bool found = false;
    for (const Diagnostic &d : rep.findings)
        if (d.rule == "DAC-W005") {
            EXPECT_EQ(d.pc, 0);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(Checkers, UsedResultNotDead)
{
    LintReport rep = lint(R"(
.kernel t
.param out
    mov r1, 2;
    add r2, $out, 0;
    st.global.u32 [r2], r1;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-W005"), 0);
}

// ---------------------------------------------------------------------------
// DAC-I006: coalescing grades.
// ---------------------------------------------------------------------------

TEST(Checkers, CoalescingGrades)
{
    // Unit stride: info only.
    LintReport unit = lint(R"(
.kernel t
.param out
    shl r1, tid.x, 2;
    add r2, $out, r1;
    st.global.u32 [r2], 0;
    exit;
)");
    EXPECT_EQ(countRule(unit, "DAC-I006"), 1);
    EXPECT_EQ(unit.numWarnings, 0);

    // 64-byte stride: ~16 transactions/warp, flagged as a warning.
    LintReport strided = lint(R"(
.kernel t
.param out
    shl r1, tid.x, 6;
    add r2, $out, r1;
    st.global.u32 [r2], 0;
    exit;
)");
    EXPECT_EQ(countRule(strided, "DAC-I006"), 1);
    EXPECT_EQ(strided.numWarnings, 1);
    for (const Diagnostic &d : strided.findings)
        if (d.rule == "DAC-I006")
            EXPECT_EQ(d.severity, Severity::Warning);
}

TEST(Checkers, BroadcastAddressIsInfo)
{
    LintReport rep = lint(R"(
.kernel t
.param in
    add r1, $in, 0;
    ld.global.u32 r2, [r1];
    add r3, r2, 1;
    st.global.u32 [r1], r3;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-I006"), 2); // broadcast load + store
    EXPECT_EQ(rep.numWarnings, 0);
}

// ---------------------------------------------------------------------------
// Suppression pragma.
// ---------------------------------------------------------------------------

TEST(Suppression, AllowPragmaSuppressesRule)
{
    LintReport rep = lint(R"(
.kernel t
.param out
    mov r0, 1;   // lint:allow(DAC-W005) kept for clarity
    mov r1, 2;
    add r2, $out, 0;
    st.global.u32 [r2], r1;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-W005"), 0);
    EXPECT_EQ(countRule(rep, "DAC-W005", /*suppressed=*/true), 1);
    EXPECT_EQ(rep.numWarnings, 0);
    EXPECT_EQ(rep.numSuppressed, 1);
    EXPECT_TRUE(rep.clean());
}

TEST(Suppression, PragmaOnPrecedingLineAndWildcard)
{
    LintReport rep = lint(R"(
.kernel t
.param out
    // lint:allow(*)
    mov r0, 1;
    mov r1, 2;
    add r2, $out, 0;
    st.global.u32 [r2], r1;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-W005"), 0);
    EXPECT_EQ(rep.numSuppressed, 1);
}

TEST(Suppression, OtherRulesStillFire)
{
    LintReport rep = lint(R"(
.kernel t
.param out
    mov r0, 1;   // lint:allow(DAC-W001) wrong rule: does not match
    mov r1, 2;
    add r2, $out, 0;
    st.global.u32 [r2], r1;
    exit;
)");
    EXPECT_EQ(countRule(rep, "DAC-W005"), 1);
    EXPECT_EQ(rep.numSuppressed, 0);
}

// ---------------------------------------------------------------------------
// DAC-E007: decoupler soundness.
// ---------------------------------------------------------------------------

TEST(Soundness, CleanOnDecoupleableKernel)
{
    Kernel k = assemble(R"(
.kernel t
.param in out
    shl r1, tid.x, 2;
    add r2, $in, r1;
    ld.global.u32 r3, [r2];
    add r4, $out, r1;
    st.global.u32 [r4], r3;
    exit;
)");
    LintReport rep = auditDecoupling(k, DacConfig{});
    EXPECT_TRUE(rep.clean()) << rep.renderText();
    DecoupledKernel dec = decouple(k, DacConfig{});
    EXPECT_TRUE(dec.anyDecoupled);
}

TEST(Soundness, DetectsTamperedQueueTraffic)
{
    Kernel k = assemble(R"(
.kernel t
.param in out
    shl r1, tid.x, 2;
    add r2, $in, r1;
    ld.global.u32 r3, [r2];
    add r4, $out, r1;
    st.global.u32 [r4], r3;
    exit;
)");
    DacConfig cfg;
    AnalysisContext ctx(k, cfg);
    DecoupledKernel dec = decouple(k, cfg);
    ASSERT_TRUE(dec.anyDecoupled);
    // Drop the first enq.data from the affine stream: the non-affine
    // ld.deq would now consume a tuple nobody produced.
    bool dropped = false;
    for (std::size_t i = 0; i < dec.affine.insts.size(); ++i) {
        if (dec.affine.insts[i].op == Opcode::EnqData) {
            dec.affine.insts.erase(dec.affine.insts.begin() +
                                   static_cast<std::ptrdiff_t>(i));
            dec.affineOrigPc.erase(dec.affineOrigPc.begin() +
                                   static_cast<std::ptrdiff_t>(i));
            dropped = true;
            break;
        }
    }
    ASSERT_TRUE(dropped);
    DiagnosticEngine eng(ctx.kernel());
    auditDecoupling(ctx, dec, eng);
    LintReport rep = eng.finish();
    EXPECT_GE(rep.numErrors, 1);
    EXPECT_GE(countRule(rep, "DAC-E007"), 1);
}

TEST(Soundness, DetectsFalseDecoupledMark)
{
    Kernel k = assemble(R"(
.kernel t
.param in out
    add r0, $in, 0;
    ld.global.u32 r1, [r0];     // data-dependent chain below
    shl r2, r1, 2;
    add r3, $in, r2;
    ld.global.u32 r4, [r3];     // non-affine address
    shl r5, tid.x, 2;
    add r6, $out, r5;
    st.global.u32 [r6], r4;
    exit;
)");
    DacConfig cfg;
    AnalysisContext ctx(k, cfg);
    DecoupledKernel dec = decouple(k, cfg);
    ASSERT_TRUE(dec.anyDecoupled);
    ASSERT_FALSE(dec.decoupled[4]); // the data-dependent load stays put
    // Claim the data-dependent load was decoupled: the independent
    // re-analysis must reject it.
    dec.decoupled[4] = true;
    DiagnosticEngine eng(ctx.kernel());
    auditDecoupling(ctx, dec, eng);
    EXPECT_GE(eng.finish().numErrors, 1);
}

TEST(Soundness, AgreesWithDecouplerOnEveryWorkload)
{
    for (const Workload &wl : allWorkloads()) {
        GpuMemory gmem;
        PreparedWorkload prep = wl.prepare(gmem, 0.05);
        LintReport rep = auditDecoupling(prep.kernel, DacConfig{});
        EXPECT_TRUE(rep.clean())
            << wl.name << ":\n" << rep.renderText();
    }
}

// ---------------------------------------------------------------------------
// Whole-pipeline properties.
// ---------------------------------------------------------------------------

TEST(Pipeline, DeterministicReports)
{
    for (const char *name : {"PF", "HI", "BS"}) {
        LintReport a = lintWorkload(name);
        LintReport b = lintWorkload(name);
        EXPECT_EQ(a.renderText(), b.renderText()) << name;
        EXPECT_EQ(a.renderJson(), b.renderJson()) << name;
    }
}

TEST(Pipeline, AllWorkloadsLintWithoutErrors)
{
    PassManager pm = PassManager::withAllCheckers();
    for (const Workload &wl : allWorkloads()) {
        GpuMemory gmem;
        PreparedWorkload prep = wl.prepare(gmem, 0.05);
        AnalysisContext ctx(prep.kernel, DacConfig{}, {true, prep.block});
        LintReport rep = pm.run(ctx);
        EXPECT_TRUE(rep.clean()) << wl.name << ":\n" << rep.renderText();
        EXPECT_EQ(rep.numWarnings, 0)
            << wl.name << " has unsuppressed warnings:\n"
            << rep.renderText();
    }
}

// ---------------------------------------------------------------------------
// Golden lint-report fixtures (text + JSON) for two workloads.
// ---------------------------------------------------------------------------

void
checkGoldenLint(const std::string &name, const std::string &ext,
                const std::string &live)
{
    std::string path = std::string(DACSIM_GOLDEN_DIR) + "/lint_" + name +
                       "." + ext;
    if (env().updateGolden) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        os << live;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; regenerate with DACSIM_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), live)
        << "lint report changed for " << name
        << "; regenerate with DACSIM_UPDATE_GOLDEN=1 if intentional";
}

class GoldenLint : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GoldenLint, TextFixture)
{
    std::string name = GetParam();
    checkGoldenLint(name, "txt", lintWorkload(name).renderText());
}

TEST_P(GoldenLint, JsonFixture)
{
    std::string name = GetParam();
    checkGoldenLint(name, "json", lintWorkload(name).renderJson() + "\n");
}

INSTANTIATE_TEST_SUITE_P(Suite, GoldenLint, ::testing::Values("PF", "HI"));

} // namespace
