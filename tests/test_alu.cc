/**
 * @file
 * Scalar ALU semantics tests, including the gpuMod/gpuDiv pair's
 * algebraic invariants which the affine mod-type tuples rely on.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/alu.h"

using namespace dacsim;

namespace
{

TEST(Alu, BasicArithmetic)
{
    EXPECT_EQ(aluCompute(Opcode::Mov, 42), 42);
    EXPECT_EQ(aluCompute(Opcode::Add, 3, 4), 7);
    EXPECT_EQ(aluCompute(Opcode::Sub, 3, 4), -1);
    EXPECT_EQ(aluCompute(Opcode::Mul, -3, 4), -12);
    EXPECT_EQ(aluCompute(Opcode::Mad, 2, 3, 10), 16);
}

TEST(Alu, ShiftsAndBitwise)
{
    EXPECT_EQ(aluCompute(Opcode::Shl, 1, 10), 1024);
    EXPECT_EQ(aluCompute(Opcode::Shr, -8, 1), -4); // arithmetic
    EXPECT_EQ(aluCompute(Opcode::And, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(aluCompute(Opcode::Or, 0b1100, 0b1010), 0b1110);
    EXPECT_EQ(aluCompute(Opcode::Xor, 0b1100, 0b1010), 0b0110);
    EXPECT_EQ(aluCompute(Opcode::Not, 0), -1);
}

TEST(Alu, ShiftAmountsMask)
{
    // Shift counts wrap at 64 as on hardware.
    EXPECT_EQ(aluCompute(Opcode::Shl, 3, 64), 3);
    EXPECT_EQ(aluCompute(Opcode::Shr, 3, 65), 1);
}

TEST(Alu, MinMaxAbsSel)
{
    EXPECT_EQ(aluCompute(Opcode::Min, -2, 5), -2);
    EXPECT_EQ(aluCompute(Opcode::Max, -2, 5), 5);
    EXPECT_EQ(aluCompute(Opcode::Abs, -7), 7);
    EXPECT_EQ(aluCompute(Opcode::Abs, 7), 7);
    EXPECT_EQ(aluCompute(Opcode::Sel, 1, 2, 1), 1);
    EXPECT_EQ(aluCompute(Opcode::Sel, 1, 2, 0), 2);
}

TEST(Alu, Comparisons)
{
    EXPECT_TRUE(cmpCompute(CmpOp::Eq, 3, 3));
    EXPECT_TRUE(cmpCompute(CmpOp::Ne, 3, 4));
    EXPECT_TRUE(cmpCompute(CmpOp::Lt, -1, 0));
    EXPECT_TRUE(cmpCompute(CmpOp::Le, 0, 0));
    EXPECT_TRUE(cmpCompute(CmpOp::Gt, 1, 0));
    EXPECT_TRUE(cmpCompute(CmpOp::Ge, 1, 1));
    EXPECT_FALSE(cmpCompute(CmpOp::Lt, 0, 0));
}

TEST(Alu, DivModByZeroFaults)
{
    EXPECT_THROW(gpuDiv(1, 0), FatalError);
    EXPECT_THROW(gpuMod(1, 0), FatalError);
}

/** gpuMod returns values in [0, b) for positive divisors. */
class ModProperty : public ::testing::TestWithParam<std::pair<RegVal,
                                                              RegVal>>
{
};

TEST_P(ModProperty, ModInRangeAndDivConsistent)
{
    auto [a, b] = GetParam();
    RegVal m = gpuMod(a, b);
    RegVal q = gpuDiv(a, b);
    EXPECT_GE(m, 0);
    EXPECT_LT(m, b);
    // Fundamental identity: a == q*b + m.
    EXPECT_EQ(q * b + m, a);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModProperty,
    ::testing::Values(std::pair<RegVal, RegVal>{0, 7},
                      std::pair<RegVal, RegVal>{6, 7},
                      std::pair<RegVal, RegVal>{7, 7},
                      std::pair<RegVal, RegVal>{13, 7},
                      std::pair<RegVal, RegVal>{-1, 7},
                      std::pair<RegVal, RegVal>{-7, 7},
                      std::pair<RegVal, RegVal>{-13, 7},
                      std::pair<RegVal, RegVal>{1 << 20, 397},
                      std::pair<RegVal, RegVal>{624, 397},
                      std::pair<RegVal, RegVal>{123456789, 1024}));

/** The mod-tuple algebra assumes (x + k*d) mod d == x mod d. */
TEST(Alu, ModPeriodicity)
{
    for (RegVal x = -20; x <= 20; ++x)
        for (RegVal d : {3, 8, 397})
            EXPECT_EQ(gpuMod(x + 5 * d, d), gpuMod(x, d));
}

/** c*(x mod d) is what the tuple's modScale field computes. */
TEST(Alu, ModScaleDistributes)
{
    for (RegVal x : {-9, -1, 0, 5, 100})
        for (RegVal c : {-3, 2, 7})
            EXPECT_EQ(c * gpuMod(x, 16), gpuMod(x, 16) * c);
}

} // namespace
