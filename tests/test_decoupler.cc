/**
 * @file
 * Decoupler tests: stream construction for the paper's running
 * example (Figures 4/7), candidate selection, dead-code elimination,
 * branch/barrier replication, and the bail-out paths.
 */

#include <gtest/gtest.h>

#include "compiler/decoupler.h"
#include "isa/assembler.h"

using namespace dacsim;

namespace
{

Kernel
build(const std::string &src)
{
    return assemble(src);
}

int
countOp(const Kernel &k, Opcode op)
{
    int n = 0;
    for (const Instruction &i : k.insts)
        if (i.op == op)
            ++n;
    return n;
}

/** The paper's Figure 4b kernel. */
const char *figure4 = R"(
.kernel example_kernel
.param A B dim num
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $A, r2;
    add r4, $B, r2;
    mov r5, 0;
LOOP:
    ld.global.u32 r6, [r3];
    add r7, r6, 1;
    st.global.u32 [r4], r7;
    add r5, r5, 1;
    mul r8, $num, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, $dim, r5;
    @p0 bra LOOP;
    exit;
)";

TEST(Decoupler, Figure7Shape)
{
    Kernel k = build(figure4);
    DecoupledKernel d = decouple(k, DacConfig{});
    ASSERT_TRUE(d.anyDecoupled);
    EXPECT_EQ(d.numDecoupledLoads, 1);
    EXPECT_EQ(d.numDecoupledStores, 1);
    EXPECT_EQ(d.numDecoupledPreds, 1);

    // Affine stream: enq forms present, no memory instructions left.
    EXPECT_EQ(countOp(d.affine, Opcode::EnqData), 1);
    EXPECT_EQ(countOp(d.affine, Opcode::EnqAddr), 1);
    EXPECT_EQ(countOp(d.affine, Opcode::EnqPred), 1);
    EXPECT_EQ(countOp(d.affine, Opcode::Ld), 0);
    EXPECT_EQ(countOp(d.affine, Opcode::St), 0);

    // Non-affine stream matches Figure 7b: ld.deq, add, st.deq,
    // deq.pred, bra, exit — the address arithmetic is gone.
    EXPECT_EQ(countOp(d.nonAffine, Opcode::LdDeq), 1);
    EXPECT_EQ(countOp(d.nonAffine, Opcode::StDeq), 1);
    EXPECT_EQ(countOp(d.nonAffine, Opcode::DeqPred), 1);
    EXPECT_EQ(countOp(d.nonAffine, Opcode::Bra), 1);
    EXPECT_EQ(countOp(d.nonAffine, Opcode::Mul), 0);
    EXPECT_EQ(countOp(d.nonAffine, Opcode::Shl), 0);
    EXPECT_EQ(d.nonAffine.numInsts(), 6);
}

TEST(Decoupler, CoverageMarksCountRemovedWork)
{
    Kernel k = build(figure4);
    DecoupledKernel d = decouple(k, DacConfig{});
    int covered = 0;
    for (bool c : d.coveredByDac)
        covered += c;
    // ld, st, setp, and the removed address/induction arithmetic.
    EXPECT_GE(covered, 8);
    // The branch is replicated, not covered.
    for (int pc = 0; pc < k.numInsts(); ++pc) {
        if (k.insts[pc].isBranch()) {
            EXPECT_FALSE(d.coveredByDac[pc]);
        }
    }
}

TEST(Decoupler, SharedInstructionsStayInBothStreams)
{
    // r1 (the thread index) feeds both a decoupled address and a
    // non-affine computation: its def must remain in the non-affine
    // stream while also appearing in the affine stream.
    Kernel k = build(R"(
.kernel t
.param A
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $A, r2;
    ld.global.u32 r4, [r3];
    mul r5, r4, r1;
    st.global.u32 [r3], r5;
    exit;
)");
    DecoupledKernel d = decouple(k, DacConfig{});
    ASSERT_TRUE(d.anyDecoupled);
    // add r1 appears in both streams.
    EXPECT_GE(countOp(d.affine, Opcode::Add), 2);
    EXPECT_GE(countOp(d.nonAffine, Opcode::Add), 1);
    EXPECT_EQ(countOp(d.nonAffine, Opcode::LdDeq), 1);
}

TEST(Decoupler, DataDependentAddressesNotDecoupled)
{
    // A pointer chase: the second load's address is loaded data.
    Kernel k = build(R"(
.kernel t
.param A
    shl r0, tid.x, 2;
    add r1, $A, r0;
    ld.global.u32 r2, [r1];
    shl r3, r2, 2;
    add r4, $A, r3;
    ld.global.u32 r5, [r4];
    st.global.u32 [r1], r5;
    exit;
)");
    DecoupledKernel d = decouple(k, DacConfig{});
    ASSERT_TRUE(d.anyDecoupled);
    EXPECT_EQ(d.numDecoupledLoads, 1); // only the first load
    EXPECT_EQ(countOp(d.nonAffine, Opcode::Ld), 1); // gather remains
}

TEST(Decoupler, DataDependentControlSuppressesRegion)
{
    // An affine load guarded by a data-dependent branch must not
    // decouple; one before the branch must.
    Kernel k = build(R"(
.kernel t
.param A B
    shl r0, tid.x, 2;
    add r1, $A, r0;
    ld.global.u32 r2, [r1];
    setp.lt p0, r2, 0;
    @p0 bra SKIP;
    add r3, $B, r0;
    ld.global.u32 r4, [r3];
    st.global.u32 [r3], r4;
SKIP:
    exit;
)");
    DecoupledKernel d = decouple(k, DacConfig{});
    ASSERT_TRUE(d.anyDecoupled);
    EXPECT_EQ(d.numDecoupledLoads, 1);
    // The affine stream must NOT contain the data-dependent branch.
    EXPECT_EQ(countOp(d.affine, Opcode::Bra), 0);
    // The non-affine stream keeps it.
    EXPECT_EQ(countOp(d.nonAffine, Opcode::Bra), 1);
}

TEST(Decoupler, NothingDecoupledDegradesGracefully)
{
    // All addresses data-dependent: DAC falls back to the baseline.
    Kernel k = build(R"(
.kernel t
.param A
    shl r0, tid.x, 2;
    add r1, $A, r0;
    ld.global.u32 r2, [r1];
    shl r3, r2, 2;
    add r4, $A, r3;
    ld.global.u32 r5, [r4];
    shl r6, r5, 2;
    add r7, $A, r6;
    st.global.u32 [r7], r2;
    exit;
)");
    // Note: the FIRST load is affine, so force full fallback with a
    // divergent exit instead.
    Kernel k2 = build(R"(
.kernel t
.param A
    shl r0, tid.x, 2;
    add r1, $A, r0;
    ld.global.u32 r2, [r1];
    setp.lt p0, r2, 0;
    @p0 exit;
    st.global.u32 [r1], r2;
    exit;
)");
    DecoupledKernel d2 = decouple(k2, DacConfig{});
    EXPECT_FALSE(d2.anyDecoupled);
    EXPECT_EQ(d2.nonAffine.numInsts(), k2.numInsts());
    // The trivial affine stream is a bare exit.
    ASSERT_EQ(d2.affine.numInsts(), 1);
    EXPECT_TRUE(d2.affine.insts[0].isExit());
    (void)k;
}

TEST(Decoupler, BarriersReplicatedAndEpochCounted)
{
    Kernel k = build(R"(
.kernel t
.param A
.shared 512
    shl r0, tid.x, 2;
    add r1, $A, r0;
    ld.global.u32 r2, [r1];
    st.shared.u32 [r0], r2;
    bar;
    ld.shared.u32 r3, [r0];
    st.global.u32 [r1], r3;
    exit;
)");
    DecoupledKernel d = decouple(k, DacConfig{});
    ASSERT_TRUE(d.anyDecoupled);
    ASSERT_EQ(countOp(d.affine, Opcode::Bar), 1);
    ASSERT_EQ(countOp(d.nonAffine, Opcode::Bar), 1);
    for (const Instruction &i : d.affine.insts) {
        if (i.isBarrier()) {
            EXPECT_TRUE(i.epochCounted);
        }
    }
    for (const Instruction &i : d.nonAffine.insts) {
        if (i.isBarrier()) {
            EXPECT_TRUE(i.epochCounted);
        }
    }
    // Shared-memory accesses never decouple.
    EXPECT_EQ(countOp(d.nonAffine, Opcode::Ld), 1);
    EXPECT_EQ(countOp(d.nonAffine, Opcode::St), 1);
}

TEST(Decoupler, UnusedPredicateEnqueueDropped)
{
    // The decoupled predicate's only consumer is the affine-stream
    // branch; the non-affine warp needs it too (for its own branch) —
    // but here there is no branch at all, so no enq.pred/deq.pred.
    Kernel k = build(R"(
.kernel t
.param A n
    shl r0, tid.x, 2;
    add r1, $A, r0;
    setp.lt p0, tid.x, $n;
    @p0 ld.global.u32 r2, [r1];
    @p0 st.global.u32 [r1], r2;
    exit;
)");
    DecoupledKernel d = decouple(k, DacConfig{});
    ASSERT_TRUE(d.anyDecoupled);
    // p0 is needed by the non-affine deq guard, so it IS enqueued.
    EXPECT_EQ(countOp(d.affine, Opcode::EnqPred), 1);
    EXPECT_EQ(countOp(d.nonAffine, Opcode::DeqPred), 1);
}

TEST(Decoupler, DivergentTupleWithinBudgetDecouples)
{
    // Figure 14's divergent base-offset pair: one affine condition.
    Kernel k = build(R"(
.kernel t
.param A n
    setp.lt p0, tid.x, $n;
    mov r0, 0;
    @p0 shl r0, tid.x, 2;
    add r1, $A, r0;
    ld.global.u32 r2, [r1];
    st.global.u32 [r1], r2;
    exit;
)");
    DecoupledKernel d = decouple(k, DacConfig{});
    EXPECT_TRUE(d.anyDecoupled);
    EXPECT_EQ(d.numDecoupledLoads, 1);
}

TEST(Decoupler, MinMaxClampDecouples)
{
    Kernel k = build(R"(
.kernel t
.param A w
    sub r0, tid.x, 1;
    max r0, r0, 0;
    sub r1, $w, 1;
    min r2, tid.x, r1;
    add r3, r0, r2;
    shl r3, r3, 2;
    add r4, $A, r3;
    ld.global.u32 r5, [r4];
    st.global.u32 [r4], r5;
    exit;
)");
    DecoupledKernel d = decouple(k, DacConfig{});
    EXPECT_TRUE(d.anyDecoupled);
    EXPECT_EQ(d.numDecoupledLoads, 1);
    EXPECT_GE(countOp(d.affine, Opcode::Max), 1);
    EXPECT_GE(countOp(d.affine, Opcode::Min), 1);
}

TEST(Decoupler, ThreeConditionsExceedBudget)
{
    // Three nested clamps exceed the two-condition budget: the load
    // must stay on the non-affine warps.
    Kernel k = build(R"(
.kernel t
.param A w
    sub r0, tid.x, 1;
    max r0, r0, 0;
    min r0, r0, $w;
    max r0, r0, 2;
    shl r1, r0, 2;
    add r2, $A, r1;
    ld.global.u32 r3, [r2];
    st.global.u32 [r2], r3;
    exit;
)");
    DecoupledKernel d = decouple(k, DacConfig{});
    EXPECT_EQ(d.numDecoupledLoads, 0);
}

TEST(Decoupler, ModAddressDecouples)
{
    Kernel k = build(R"(
.kernel t
.param A ring
    mod r0, tid.x, $ring;
    shl r1, r0, 2;
    add r2, $A, r1;
    ld.global.u32 r3, [r2];
    shl r4, tid.x, 2;
    add r5, $A, r4;
    st.global.u32 [r5], r3;
    exit;
)");
    DecoupledKernel d = decouple(k, DacConfig{});
    EXPECT_EQ(d.numDecoupledLoads, 1);
    EXPECT_EQ(d.numDecoupledStores, 1);
}

TEST(PotentialAffine, Figure6Classification)
{
    Kernel k = build(figure4);
    PotentialAffine pa = classifyPotentialAffine(k);
    EXPECT_EQ(pa.totalInsts, k.numInsts());
    EXPECT_EQ(pa.memory, 2);  // ld + st, both affine addresses
    EXPECT_EQ(pa.branch, 2);  // setp + bra
    EXPECT_GE(pa.arithmetic, 7);
    EXPECT_GT(pa.fraction(), 0.5);
}

TEST(PotentialAffine, IndirectKernelScoresLow)
{
    Kernel k = build(R"(
.kernel t
.param A
    shl r0, tid.x, 2;
    add r1, $A, r0;
    ld.global.u32 r2, [r1];
    shl r3, r2, 2;
    add r4, $A, r3;
    ld.global.u32 r5, [r4];
    mul r6, r5, r2;
    st.global.u32 [r1], r6;
    exit;
)");
    PotentialAffine pa = classifyPotentialAffine(k);
    EXPECT_EQ(pa.memory, 2); // first ld + st (affine), gather is not
    EXPECT_LT(pa.fraction(), 0.8);
}

} // namespace
