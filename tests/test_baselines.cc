/**
 * @file
 * Baseline-technique unit tests: the MTA prefetcher's stride
 * training/throttling and the reaching-definitions dataflow that the
 * compiler baselines share.
 */

#include <gtest/gtest.h>

#include "baselines/mta.h"
#include "compiler/cfg.h"
#include "compiler/reaching_defs.h"
#include "isa/assembler.h"

using namespace dacsim;

namespace
{

struct MtaFixture : ::testing::Test
{
    GpuConfig gcfg;
    MtaConfig mcfg;
    RunStats stats;
    MemorySystem ms{gcfg, &stats};
    MtaPrefetcher pf{0, mcfg, ms, stats};

    MtaFixture() { ms.enablePrefetchBuffer(mcfg); }
};

TEST_F(MtaFixture, TrainsIntraWarpStride)
{
    // Same PC, same warp, constant stride: prefetches after the
    // confirmation threshold.
    Addr stride = 4 * 128;
    for (int i = 0; i < 3; ++i)
        pf.observe(/*pc=*/7, /*warp=*/3, static_cast<Addr>(i) * stride,
                   0);
    EXPECT_GT(stats.prefetchesIssued, 0u);
    // The prefetched line is the next in the stream.
    AccessResult r = ms.load(0, 3 * stride, 10000, Requester::Demand);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(stats.prefetchHits, 1u);
}

TEST_F(MtaFixture, NoPrefetchWithoutConfirmation)
{
    pf.observe(7, 3, 0, 0);
    pf.observe(7, 3, 128, 0);     // first delta
    EXPECT_EQ(stats.prefetchesIssued, 0u);
}

TEST_F(MtaFixture, IrregularStreamStaysQuiet)
{
    Addr irregular[] = {0, 512, 128, 4096, 64 * 128, 7 * 128};
    for (Addr a : irregular)
        pf.observe(9, 0, a, 0);
    EXPECT_EQ(stats.prefetchesIssued, 0u);
}

TEST_F(MtaFixture, InterWarpStrideDetected)
{
    // Successive warps touch consecutive lines at the same PC.
    for (int w = 0; w < 4; ++w)
        pf.observe(11, w, static_cast<Addr>(w) * 128, 0);
    EXPECT_GT(stats.prefetchesIssued, 0u);
}

TEST_F(MtaFixture, ThrottleHalvesDegree)
{
    int start = pf.currentDegree();
    // Flood the buffer with never-used prefetches by training a
    // stride and issuing far more than the 16KB buffer holds (time
    // advances so in-flight prefetches retire and free MSHRs).
    for (int i = 0; i < 600; ++i)
        pf.observe(13, 0, static_cast<Addr>(i) * 128,
                   static_cast<Cycle>(i) * 600);
    EXPECT_LT(pf.currentDegree(), start);
    EXPECT_GT(stats.prefetchUnused, 0u);
}

TEST_F(MtaFixture, ResetClearsTraining)
{
    for (int i = 0; i < 3; ++i)
        pf.observe(7, 3, static_cast<Addr>(i) * 128, 0);
    std::uint64_t issued = stats.prefetchesIssued;
    pf.reset();
    pf.observe(7, 3, 10 * 128, 0);
    pf.observe(7, 3, 11 * 128, 0);
    EXPECT_EQ(stats.prefetchesIssued, issued); // needs re-confirmation
}

// ----- reaching definitions ---------------------------------------------------

struct RdFixture
{
    Kernel kernel;
    Cfg cfg;
    ReachingDefs rd;

    explicit RdFixture(const std::string &body)
        : kernel(assemble(".kernel t\n.param A\n" + body + "\nexit;\n")),
          cfg(analyzeControlFlow(kernel)), rd(kernel, cfg)
    {
    }
};

TEST(ReachingDefs, StraightLineKills)
{
    RdFixture f("mov r0, 1;\nmov r0, 2;\nadd r1, r0, 0;");
    auto defs = f.rd.reachingRegDefs(2, 0);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(defs[0], 1); // only the second mov reaches
}

TEST(ReachingDefs, EntryDefForUnwritten)
{
    RdFixture f("add r1, r9, 0;");
    auto defs = f.rd.reachingRegDefs(0, 9);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_TRUE(f.rd.isEntryDef(defs[0]));
}

TEST(ReachingDefs, DiamondMergesTwoDefs)
{
    RdFixture f("setp.lt p0, tid.x, 4;\n"
                "@p0 bra T;\n"
                "mov r0, 1;\n"
                "bra J;\n"
                "T:\n"
                "mov r0, 2;\n"
                "J:\n"
                "add r1, r0, 0;");
    auto defs = f.rd.reachingRegDefs(6, 0);
    EXPECT_EQ(defs.size(), 2u);
}

TEST(ReachingDefs, GuardedWriteDoesNotKill)
{
    RdFixture f("mov r0, 1;\n"
                "setp.lt p0, tid.x, 4;\n"
                "@p0 mov r0, 2;\n"
                "add r1, r0, 0;");
    auto defs = f.rd.reachingRegDefs(3, 0);
    EXPECT_EQ(defs.size(), 2u); // both movs reach
}

TEST(ReachingDefs, LoopCarriedDefsMergeAtHead)
{
    RdFixture f("mov r0, 0;\n"
                "L:\n"
                "add r0, r0, 1;\n"
                "setp.lt p0, r0, 9;\n"
                "@p0 bra L;");
    auto defs = f.rd.reachingRegDefs(1, 0);
    EXPECT_EQ(defs.size(), 2u); // init + back edge
}

TEST(ReachingDefs, PredicateDefsTracked)
{
    RdFixture f("setp.lt p0, tid.x, 4;\n"
                "setp.gt p0, tid.x, 20;\n"
                "@p0 mov r0, 1;");
    auto defs = f.rd.reachingPredDefs(2, 0);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(defs[0], 1);
}

} // namespace
