/**
 * @file
 * Golden-stats regression lock (DESIGN.md §9).
 *
 * Locks the complete RunStats, output checksums, and the tail of the
 * state-hash chain for one compute-bound (BS) and one memory-bound
 * (SP) workload, on both the baseline and DAC machines, against
 * committed fixtures in tests/golden/. Any perf PR that changes
 * simulated behaviour shows up as a diff here — interval by interval
 * via the chain tail, not just in end-of-run counters.
 *
 * Regenerate the fixtures after an *intentional* model change with:
 *   DACSIM_UPDATE_GOLDEN=1 ./tests/dacsim_tests --gtest_filter='Golden.*'
 * and commit the diff; the test fails on any mismatch otherwise.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/env.h"
#include "harness/runner.h"

using namespace dacsim;

namespace
{

/** Links of the chain tail locked by the fixture. */
constexpr std::size_t tailLinks = 8;

std::string
render(const std::string &bench, Technique tech, const RunOutcome &out)
{
    std::ostringstream os;
    os << "bench=" << bench << " tech=" << techniqueName(tech)
       << " sms=2 scale=1\n";
    visitStats(out.stats, [&](const char *name, const std::uint64_t &v) {
        os << name << "=" << v << "\n";
    });
    os << "checksums=";
    for (std::size_t i = 0; i < out.checksums.size(); ++i)
        os << (i ? "," : "") << out.checksums[i];
    os << "\n";
    std::size_t first = out.hashChain.size() > tailLinks
                            ? out.hashChain.size() - tailLinks
                            : 0;
    for (std::size_t i = first; i < out.hashChain.size(); ++i) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "chain cycle=%llu hash=%016llx\n",
                      static_cast<unsigned long long>(
                          out.hashChain[i].cycle),
                      static_cast<unsigned long long>(
                          out.hashChain[i].hash));
        os << buf;
    }
    return os.str();
}

void
checkGolden(const std::string &bench, Technique tech)
{
    RunOptions opt;
    opt.tech = tech;
    opt.gpu.numSms = 2; // small but multi-SM, matching the fixtures
    opt.scale = 1.0;
    RunOutcome out = runWorkload(bench, opt);
    ASSERT_TRUE(out.ok()) << out.error.what;
    std::string live = render(bench, tech, out);

    std::string path = std::string(DACSIM_GOLDEN_DIR) + "/" + bench +
                       "_" + techniqueName(tech) + ".txt";
    if (env().updateGolden) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        os << live;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing fixture " << path
        << " (regenerate with DACSIM_UPDATE_GOLDEN=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(live, want.str())
        << "simulated behaviour changed for " << bench << "/"
        << techniqueName(tech)
        << "; if intentional, regenerate with DACSIM_UPDATE_GOLDEN=1 "
           "and commit the fixture diff";
}

TEST(Golden, ComputeBoundBaseline) { checkGolden("BS", Technique::Baseline); }
TEST(Golden, ComputeBoundDac) { checkGolden("BS", Technique::Dac); }
TEST(Golden, MemoryBoundBaseline) { checkGolden("SP", Technique::Baseline); }
TEST(Golden, MemoryBoundDac) { checkGolden("SP", Technique::Dac); }

} // namespace
