/**
 * @file
 * End-to-end simulator tests: functional correctness of every opcode
 * through the full GPU model, barriers, divergence/reconvergence,
 * multi-CTA grids, multi-batch execution, and — most importantly —
 * bit-identical results between the baseline and the DAC decoupled
 * execution for kernels that exercise each mechanism.
 */

#include <gtest/gtest.h>

#include "compiler/cfg.h"
#include "compiler/decoupler.h"
#include "harness/runner.h"
#include "isa/assembler.h"
#include "mem/gpu_memory.h"
#include "sim/gpu.h"

using namespace dacsim;

namespace
{

struct RunSpec
{
    std::string src;
    Dim3 grid{1, 1, 1};
    Dim3 block{32, 1, 1};
    std::vector<RegVal> params;
    std::function<void(GpuMemory &)> init;
};

struct RunResult
{
    RunStats stats;
    std::vector<std::int32_t> out;
};

/** Run a kernel on one machine and read back an output array. */
RunResult
runOn(Technique tech, const RunSpec &spec, Addr out_base,
      std::size_t out_count, GpuConfig gcfg = GpuConfig{})
{
    GpuMemory gmem;
    if (spec.init)
        spec.init(gmem);
    Kernel k = assemble(spec.src);
    analyzeControlFlow(k);
    DacConfig dcfg;
    DecoupledKernel dec = decouple(k, dcfg);
    CaeConfig ccfg;
    MtaConfig mcfg;
    Gpu gpu(gcfg, tech, dcfg, ccfg, mcfg, gmem);
    LaunchInfo li;
    li.grid = spec.grid;
    li.block = spec.block;
    li.params = &spec.params;
    if (tech == Technique::Dac) {
        li.kernel = &dec.nonAffine;
        li.affineKernel = &dec.affine;
    } else {
        li.kernel = &k;
    }
    gpu.launch(li);
    RunResult r;
    r.stats = gpu.stats();
    r.out = gmem.readI32Array(out_base, out_count);
    return r;
}

/** Run on all four machines and require identical outputs. */
RunResult
runEverywhere(const RunSpec &spec, Addr out, std::size_t n)
{
    RunResult base = runOn(Technique::Baseline, spec, out, n);
    for (Technique t :
         {Technique::Cae, Technique::Mta, Technique::Dac}) {
        RunResult r = runOn(t, spec, out, n);
        EXPECT_EQ(r.out, base.out) << "technique " << techniqueName(t);
    }
    return base;
}

constexpr Addr OUT = 0x100000; // fixed output buffer for tests

TEST(GpuFunctional, ThreadIdentity)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param out
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $out, r2;
    st.global.u32 [r3], r1;
    exit;
)";
    s.grid = {3, 1, 1};
    s.params = {OUT};
    RunResult r = runEverywhere(s, OUT, 96);
    for (int i = 0; i < 96; ++i)
        EXPECT_EQ(r.out[static_cast<std::size_t>(i)], i);
}

TEST(GpuFunctional, MultiDimensionalIndices)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param out w
    mul r0, ctaid.x, ntid.x;
    add r0, r0, tid.x;
    mul r1, ctaid.y, ntid.y;
    add r1, r1, tid.y;
    mul r2, r1, $w;
    add r2, r2, r0;
    shl r3, r2, 2;
    add r4, $out, r3;
    mul r5, r1, 1000;
    add r5, r5, r0;
    st.global.u32 [r4], r5;
    exit;
)";
    s.grid = {2, 2, 1};
    s.block = {8, 4, 1};
    s.params = {OUT, 16};
    RunResult r = runEverywhere(s, OUT, 16 * 8);
    // Element (x=9, y=5): value 5*1000+9.
    EXPECT_EQ(r.out[5 * 16 + 9], 5009);
}

TEST(GpuFunctional, AllAluOpcodes)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param out in
    shl r0, tid.x, 2;
    add r1, $in, r0;
    ld.global.s32 r2, [r1];
    add r3, r2, 3;
    sub r3, r3, 1;
    mul r4, r3, r3;
    mad r4, r3, 2, r4;
    shl r5, r4, 1;
    shr r5, r5, 1;
    and r6, r5, 1023;
    or r6, r6, 1;
    xor r6, r6, 85;
    not r7, r6;
    min r8, r7, r6;
    max r9, r7, r6;
    abs r10, r8;
    div r11, r10, 3;
    mod r12, r10, 3;
    setp.gt p0, r11, r12;
    sel r13, r11, r12, p0;
    add r14, r9, r13;
    add r15, $out, r0;
    st.global.u32 [r15], r14;
    exit;
)";
    s.params = {OUT, 0x8000};
    s.init = [](GpuMemory &m) {
        for (int i = 0; i < 32; ++i)
            m.store(0x8000 + 4 * i, (i * 37) % 100 - 50, MemWidth::S32);
    };
    runEverywhere(s, OUT, 32);
}

TEST(GpuFunctional, DivergenceReconverges)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param out
    setp.lt p0, tid.x, 10;
    mov r0, 0;
    @p0 bra SMALL;
    mul r0, tid.x, 100;
    bra JOIN;
SMALL:
    add r0, tid.x, 7;
JOIN:
    add r0, r0, 1;
    shl r1, tid.x, 2;
    add r2, $out, r1;
    st.global.u32 [r2], r0;
    exit;
)";
    s.params = {OUT};
    RunResult r = runEverywhere(s, OUT, 32);
    EXPECT_EQ(r.out[3], 3 + 7 + 1);
    EXPECT_EQ(r.out[20], 20 * 100 + 1);
}

TEST(GpuFunctional, NestedDivergence)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param out
    mov r0, 0;
    setp.lt p0, tid.x, 16;
    @!p0 bra BIG;
    setp.lt p1, tid.x, 8;
    @!p1 bra MID;
    add r0, tid.x, 1000;
    bra IN;
MID:
    add r0, tid.x, 2000;
IN:
    add r0, r0, 5;
    bra JOIN;
BIG:
    add r0, tid.x, 3000;
JOIN:
    shl r1, tid.x, 2;
    add r2, $out, r1;
    st.global.u32 [r2], r0;
    exit;
)";
    s.params = {OUT};
    RunResult r = runEverywhere(s, OUT, 32);
    EXPECT_EQ(r.out[2], 2 + 1000 + 5);
    EXPECT_EQ(r.out[12], 12 + 2000 + 5);
    EXPECT_EQ(r.out[25], 25 + 3000);
}

TEST(GpuFunctional, GuardedExitRetiresThreads)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param out
    shl r1, tid.x, 2;
    add r2, $out, r1;
    st.global.u32 [r2], 1;
    setp.lt p0, tid.x, 16;
    @p0 exit;
    st.global.u32 [r2], 2;
    exit;
)";
    s.params = {OUT};
    RunResult r = runEverywhere(s, OUT, 32);
    EXPECT_EQ(r.out[5], 1);
    EXPECT_EQ(r.out[25], 2);
}

TEST(GpuFunctional, SharedMemoryAndBarrier)
{
    // Reverse a block's values through shared memory.
    RunSpec s;
    s.src = R"(
.kernel t
.param out
.shared 128
    shl r0, tid.x, 2;
    mul r1, tid.x, 3;
    st.shared.u32 [r0], r1;
    bar;
    sub r2, 31, tid.x;
    shl r2, r2, 2;
    ld.shared.u32 r3, [r2];
    mul r4, ctaid.x, ntid.x;
    add r4, r4, tid.x;
    shl r4, r4, 2;
    add r5, $out, r4;
    st.global.u32 [r5], r3;
    exit;
)";
    s.grid = {2, 1, 1};
    s.params = {OUT};
    RunResult r = runEverywhere(s, OUT, 64);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(r.out[static_cast<std::size_t>(i)], (31 - i) * 3);
}

TEST(GpuFunctional, PartialLastWarp)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param out
    mul r0, ctaid.x, ntid.x;
    add r0, r0, tid.x;
    shl r1, r0, 2;
    add r2, $out, r1;
    add r3, r0, 1;
    st.global.u32 [r2], r3;
    exit;
)";
    s.block = {48, 1, 1}; // 1.5 warps
    s.grid = {2, 1, 1};
    s.params = {OUT};
    RunResult r = runEverywhere(s, OUT, 96);
    EXPECT_EQ(r.out[47], 48);
    EXPECT_EQ(r.out[95], 96);
}

TEST(GpuFunctional, LoopWithScalarTripCount)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param out n
    mov r0, 0;
    mov r1, 0;
L:
    add r0, r0, r1;
    add r1, r1, 1;
    setp.lt p0, r1, $n;
    @p0 bra L;
    shl r2, tid.x, 2;
    add r3, $out, r2;
    add r4, r0, tid.x;
    st.global.u32 [r3], r4;
    exit;
)";
    s.params = {OUT, 10};
    RunResult r = runEverywhere(s, OUT, 32);
    EXPECT_EQ(r.out[0], 45);
    EXPECT_EQ(r.out[31], 45 + 31);
}

TEST(GpuFunctional, ThreadDependentTripCounts)
{
    // Each thread iterates tid.x+1 times: divergent loop exits.
    RunSpec s;
    s.src = R"(
.kernel t
.param out
    mov r0, 0;
    mov r1, 0;
L:
    add r0, r0, 2;
    add r1, r1, 1;
    setp.le p0, r1, tid.x;
    @p0 bra L;
    shl r2, tid.x, 2;
    add r3, $out, r2;
    st.global.u32 [r3], r0;
    exit;
)";
    s.params = {OUT};
    RunResult r = runEverywhere(s, OUT, 32);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(r.out[static_cast<std::size_t>(i)], 2 * (i + 1));
}

TEST(GpuDac, MultiBatchExecution)
{
    // More CTAs than can be resident: the affine warp must re-run
    // per batch with correct blockIdx-dependent tuples.
    RunSpec s;
    s.src = R"(
.kernel t
.param in out
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $in, r2;
    ld.global.u32 r4, [r3];
    add r4, r4, 1;
    add r5, $out, r2;
    st.global.u32 [r5], r4;
    exit;
)";
    s.grid = {40, 1, 1};
    s.block = {64, 1, 1};
    s.params = {0x40000, OUT};
    s.init = [](GpuMemory &m) {
        for (int i = 0; i < 2560; ++i)
            m.store(0x40000 + 4 * i, i * 3, MemWidth::U32);
    };
    GpuConfig one;
    one.numSms = 2; // force many batches per SM
    RunResult b = runOn(Technique::Baseline, s, OUT, 2560, one);
    RunResult d = runOn(Technique::Dac, s, OUT, 2560, one);
    EXPECT_EQ(b.out, d.out);
    EXPECT_GT(d.stats.dacBatches, 2u);
    EXPECT_GT(d.stats.affineLoadRequests, 0u);
    EXPECT_LT(d.stats.warpInsts, b.stats.warpInsts);
}

TEST(GpuDac, EpochGatedBarrierKernel)
{
    // Producer/consumer through shared memory with a global load in
    // each phase: exercises the barrier-epoch gating of early fetches.
    RunSpec s;
    s.src = R"(
.kernel t
.param in out
.shared 128
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $in, r2;
    ld.global.u32 r4, [r3];
    shl r5, tid.x, 2;
    st.shared.u32 [r5], r4;
    bar;
    sub r6, 31, tid.x;
    shl r6, r6, 2;
    ld.shared.u32 r7, [r6];
    add r9, r3, 4096;
    ld.global.u32 r10, [r9];
    add r11, r7, r10;
    add r12, $out, r2;
    st.global.u32 [r12], r11;
    exit;
)";
    s.grid = {4, 1, 1};
    s.params = {0x40000, OUT};
    s.init = [](GpuMemory &m) {
        for (int i = 0; i < 4096; ++i)
            m.store(0x40000 + 4 * i, i, MemWidth::U32);
    };
    runEverywhere(s, OUT, 128);
}

TEST(GpuDac, DecoupledPredicateLoop)
{
    // The Figure 7 kernel end-to-end with verification of the
    // instruction-count reduction.
    RunSpec s;
    s.src = R"(
.kernel t
.param A B dim num
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $A, r2;
    add r4, $B, r2;
    mov r5, 0;
LOOP:
    ld.global.u32 r6, [r3];
    add r7, r6, 1;
    st.global.u32 [r4], r7;
    add r5, r5, 1;
    mul r8, $num, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, $dim, r5;
    @p0 bra LOOP;
    exit;
)";
    s.grid = {4, 1, 1};
    s.block = {64, 1, 1};
    s.params = {0x40000, OUT, 8, 256};
    s.init = [](GpuMemory &m) {
        for (int i = 0; i < 2048; ++i)
            m.store(0x40000 + 4 * i, 10 * i, MemWidth::U32);
    };
    RunResult b = runOn(Technique::Baseline, s, OUT, 2048);
    RunResult d = runOn(Technique::Dac, s, OUT, 2048);
    EXPECT_EQ(b.out, d.out);
    EXPECT_EQ(d.out[100], 1001);
    // The decoupled loop drops from 9 to 5 instructions per iteration.
    EXPECT_LT(static_cast<double>(d.stats.warpInsts),
              0.75 * static_cast<double>(b.stats.warpInsts));
}

TEST(GpuDac, DivergentTupleKernel)
{
    // Figure 14's right side: offset differs per path.
    RunSpec s;
    s.src = R"(
.kernel t
.param A out n
    setp.lt p0, tid.x, $n;
    mov r0, 0;
    @p0 shl r0, tid.x, 2;
    add r1, $A, r0;
    ld.global.u32 r2, [r1];
    shl r3, tid.x, 2;
    add r4, $out, r3;
    st.global.u32 [r4], r2;
    exit;
)";
    s.params = {0x40000, OUT, 12};
    s.init = [](GpuMemory &m) {
        for (int i = 0; i < 64; ++i)
            m.store(0x40000 + 4 * i, 500 + i, MemWidth::U32);
    };
    RunResult r = runEverywhere(s, OUT, 32);
    EXPECT_EQ(r.out[5], 505);  // tid < 12: own element
    EXPECT_EQ(r.out[20], 500); // tid >= 12: element 0
}

TEST(GpuDac, ModAddressKernel)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param A out ring
    mod r0, tid.x, $ring;
    shl r1, r0, 2;
    add r2, $A, r1;
    ld.global.u32 r3, [r2];
    shl r4, tid.x, 2;
    add r5, $out, r4;
    st.global.u32 [r5], r3;
    exit;
)";
    s.params = {0x40000, OUT, 5};
    s.init = [](GpuMemory &m) {
        for (int i = 0; i < 8; ++i)
            m.store(0x40000 + 4 * i, 900 + i, MemWidth::U32);
    };
    RunResult r = runEverywhere(s, OUT, 32);
    EXPECT_EQ(r.out[7], 902);
    EXPECT_EQ(r.out[31], 901);
}

TEST(GpuCae, AffineInstsDetected)
{
    RunSpec s;
    s.src = R"(
.kernel t
.param out
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $out, r2;
    st.global.u32 [r3], r1;
    exit;
)";
    s.grid = {4, 1, 1};
    s.params = {OUT};
    RunResult r = runOn(Technique::Cae, s, OUT, 128);
    EXPECT_GT(r.stats.caeAffineInsts, 0u);
    // The whole address chain is affine: at least 4 per warp.
    EXPECT_GE(r.stats.caeAffineInsts, 4u * 4u);
}

TEST(GpuWatchdog, DetectsStarvedDequeue)
{
    // A non-affine stream that dequeues with no matching producer in
    // the affine stream can never issue: the deadlock watchdog must
    // fire rather than hang. (The decoupler never emits such a pair;
    // this drives the safety net directly with hand-built streams.)
    GpuMemory gmem;
    Kernel na = assemble(".kernel na\n.param out\nld.deq.u32 r0;\n"
                         "exit;\n");
    analyzeControlFlow(na);
    Kernel aff = assemble(".kernel aff\n.param out\nexit;\n");
    analyzeControlFlow(aff);
    GpuConfig gcfg;
    gcfg.numSms = 1;
    Gpu gpu(gcfg, Technique::Dac, DacConfig{}, CaeConfig{}, MtaConfig{},
            gmem);
    std::vector<RegVal> params = {static_cast<RegVal>(OUT)};
    LaunchInfo li;
    li.grid = {1, 1, 1};
    li.block = {32, 1, 1};
    li.params = &params;
    li.kernel = &na;
    li.affineKernel = &aff;
    EXPECT_THROW(gpu.launch(li), PanicError);
}

} // namespace
