/**
 * @file
 * Event-core tests (DESIGN.md §13): the wake-list scheduler must be a
 * pure host-side optimization. Every simulated statistic, output
 * checksum, hash-chain link, and failure cycle stays bit-identical to
 * the reference stepped loop — across techniques, under every wake
 * source the caches track (writebacks, MSHR releases, barrier
 * releases, DAC queue transitions, batch launches), with fault plans
 * and per-cycle observability forcing the stepped loop, and across a
 * snapshot written under one core and resumed under another.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <string>

#include "common/env.h"
#include "harness/runner.h"
#include "obs/obs.h"
#include "sim/gpu.h"

namespace fs = std::filesystem;
using namespace dacsim;

namespace
{

constexpr SimCore allCores[] = {SimCore::Stepped, SimCore::FastForward,
                                SimCore::Event};

/** Per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = std::string("dacsim_events_") +
                           info->test_suite_name() + "_" + info->name();
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        path = fs::temp_directory_path() / name;
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

void
expectIdentical(const RunOutcome &a, const RunOutcome &b,
                const std::string &what)
{
    ASSERT_TRUE(a.ok()) << what << ": " << a.error.what;
    ASSERT_TRUE(b.ok()) << what << ": " << b.error.what;
    EXPECT_TRUE(a.stats == b.stats) << what;
    EXPECT_EQ(a.checksums, b.checksums) << what;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
    EXPECT_EQ(a.hashChain, b.hashChain) << what;
    EXPECT_EQ(a.lastStateHash, b.lastStateHash) << what;
}

/** Run @p bench under every core and require the stepped reference. */
void
coreSweep(const char *bench, Technique tech, RunOptions opt,
          double scale = 0.12)
{
    opt.tech = tech;
    opt.scale = scale;
    opt.gpu.simCore = SimCore::Stepped;
    RunOutcome ref = runWorkload(bench, opt);
    for (SimCore core : {SimCore::FastForward, SimCore::Event}) {
        opt.gpu.simCore = core;
        RunOutcome out = runWorkload(bench, opt);
        expectIdentical(ref, out,
                        std::string(bench) + "/" + techniqueName(tech) +
                            "/" + simCoreName(core));
    }
}

} // namespace

// ----- configuration surface ----------------------------------------------

TEST(SimCoreNames, RoundTripAndRejection)
{
    for (SimCore core : allCores) {
        SimCore parsed;
        ASSERT_TRUE(simCoreFromName(simCoreName(core), &parsed))
            << simCoreName(core);
        EXPECT_TRUE(parsed == core) << simCoreName(core);
    }
    SimCore junk;
    EXPECT_FALSE(simCoreFromName("warp-speed", &junk));
    EXPECT_FALSE(simCoreFromName("", &junk));
}

TEST(SimCoreEnv, KnobParsesEveryCoreName)
{
    for (SimCore core : allCores) {
        std::vector<std::string> warnings;
        Env e = parseEnv({{"DACSIM_SIM_CORE", simCoreName(core)}},
                         &warnings);
        EXPECT_EQ(e.simCore, simCoreName(core));
        EXPECT_TRUE(warnings.empty()) << warnings.front();
    }
}

TEST(SimCoreEnv, MalformedValueWarnsAndFallsBack)
{
    std::vector<std::string> warnings;
    Env e = parseEnv({{"DACSIM_SIM_CORE", "turbo"}}, &warnings);
    EXPECT_EQ(e.simCore, "");
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings.front().find("DACSIM_SIM_CORE"),
              std::string::npos);
}

// ----- mode sweep: every technique, both workload categories --------------

TEST(SimCoreSweep, MemoryIntensiveEveryTechnique)
{
    // SP's long memory-latency windows are where the event core jumps
    // hardest; every technique must survive them bit-identically.
    for (Technique t : {Technique::Baseline, Technique::Cae,
                        Technique::Mta, Technique::Dac})
        coreSweep("SP", t, RunOptions{});
}

TEST(SimCoreSweep, ComputeIntensiveEveryTechnique)
{
    // BS keeps schedulers busy nearly every cycle: the event core must
    // degrade to per-cycle stepping without disturbing issue order.
    for (Technique t : {Technique::Baseline, Technique::Cae,
                        Technique::Mta, Technique::Dac})
        coreSweep("BS", t, RunOptions{});
}

// ----- wake invalidation, one test per event source -----------------------

TEST(WakeInvalidation, MshrReleaseUnderPressure)
{
    // A tiny MSHR table forces the LD/ST replay path constantly: warps
    // sleep on MSHR releases, so a missed release-side invalidation
    // would stall or reorder replays.
    RunOptions opt;
    opt.gpu.l1.mshrs = 2;
    coreSweep("SP", Technique::Baseline, opt);
    coreSweep("SP", Technique::Dac, opt);
}

TEST(WakeInvalidation, DacQueueTransitions)
{
    // A tiny ATQ keeps the affine warp bouncing between enq
    // back-pressure and drain, and consumers between deq-stall and
    // delivery — every queue push/pop edge becomes a wake event.
    RunOptions opt;
    opt.dac.atqEntries = 2;
    coreSweep("SP", Technique::Dac, opt);
    coreSweep("FFT", Technique::Dac, opt);
}

TEST(WakeInvalidation, BarrierReleases)
{
    // PF synchronizes every DP row with CTA barriers: warps park on
    // atBarrier and wake on the release, which the event core must
    // observe on the exact release cycle.
    coreSweep("PF", Technique::Baseline, RunOptions{});
    coreSweep("PF", Technique::Dac, RunOptions{});
}

TEST(WakeInvalidation, WritebackChains)
{
    // LIB/MTA exercises the prefetch buffer's writeback and release
    // paths feeding dependent loads.
    coreSweep("LIB", Technique::Mta, RunOptions{});
}

TEST(WakeInvalidation, DeqStallReconstruction)
{
    // Warps parked at a deq count one deqStallCycles per free-slot
    // cycle; the event core does not step those cycles but
    // reconstructs the counts in closed form at wake and settles them
    // at boundary folds (DESIGN.md §13). SP/dac parks consumers
    // behind in-flight early fetches constantly — require the stat to
    // be nonzero here so the parity sweep cannot go vacuous, then
    // require exact agreement.
    RunOptions opt;
    opt.tech = Technique::Dac;
    opt.scale = 0.12;
    opt.gpu.simCore = SimCore::Stepped;
    RunOutcome ref = runWorkload("SP", opt);
    ASSERT_TRUE(ref.ok()) << ref.error.what;
    EXPECT_GT(ref.stats.deqStallCycles, 0u);
    opt.gpu.simCore = SimCore::Event;
    RunOutcome out = runWorkload("SP", opt);
    ASSERT_TRUE(out.ok()) << out.error.what;
    EXPECT_EQ(ref.stats.deqStallCycles, out.stats.deqStallCycles);
    expectIdentical(ref, out, "SP/dac deq-stall reconstruction");
}

// ----- forced per-cycle stepping ------------------------------------------

TEST(SimCoreForced, FaultPlanParity)
{
    // Fault windows are defined per simulated cycle: every core must
    // force the stepped loop under a plan, reproducing the injected
    // fault counters and outcomes exactly.
    RunOptions opt;
    opt.faults = FaultPlan::parse("seed=7;mshr@0-50000:16;jitter@0:300");
    opt.tech = Technique::Dac;
    opt.scale = 0.12;
    opt.gpu.simCore = SimCore::Stepped;
    RunOutcome ref = runWorkload("SP", opt);
    opt.gpu.simCore = SimCore::Event;
    RunOutcome out = runWorkload("SP", opt);
    ASSERT_EQ(ref.ok(), out.ok());
    EXPECT_TRUE(ref.stats == out.stats);
    EXPECT_EQ(ref.checksums, out.checksums);
    EXPECT_EQ(ref.fellBack, out.fellBack);
    EXPECT_EQ(ref.error.kind, out.error.kind);
}

TEST(SimCoreForced, PerCycleObservabilityParity)
{
    // Stall attribution accrues per idle issue slot per cycle; the
    // event core must fall back to stepping so the attribution (and
    // everything else) matches the reference.
    RunOptions opt;
    opt.tech = Technique::Dac;
    opt.scale = 0.12;
    opt.obs.stalls = true;
    opt.gpu.simCore = SimCore::Stepped;
    RunOutcome ref = runWorkload("SP", opt);
    opt.gpu.simCore = SimCore::Event;
    RunOutcome out = runWorkload("SP", opt);
    ASSERT_TRUE(ref.ok() && out.ok());
    EXPECT_TRUE(ref.stats == out.stats);
    EXPECT_EQ(ref.checksums, out.checksums);
    EXPECT_EQ(ref.hashChain, out.hashChain);
}

// ----- snapshots cross simulation cores -----------------------------------

TEST(SimCoreSnapshot, WrittenSteppedResumedUnderEvent)
{
    // simCore is a results-transparent host knob excluded from the
    // snapshot config fingerprint: a snapshot written under the
    // stepped loop must restore under the event core (and vice versa)
    // and finish bit-identically.
    TempDir tmp;
    RunOptions opt;
    opt.tech = Technique::Dac;
    opt.gpu.numSms = 2;
    opt.scale = 1.0;
    opt.gpu.simCore = SimCore::Stepped;
    opt.checkpoint.dir = tmp.path.string();
    opt.checkpoint.tag = "xcore";
    opt.checkpoint.everyCycles = 4096;
    RunOutcome clean = runWorkload("SP", opt);
    ASSERT_TRUE(clean.ok()) << clean.error.what;
    ASSERT_GT(clean.stats.cycles, 3u * 4096);

    RunOptions resume = opt;
    resume.checkpoint.resume = true;
    resume.gpu.simCore = SimCore::Event;
    RunOutcome out = runWorkload("SP", resume);
    ASSERT_TRUE(out.ok()) << out.error.what;
    EXPECT_TRUE(out.resumed);
    EXPECT_TRUE(clean.stats == out.stats);
    EXPECT_EQ(clean.checksums, out.checksums);
    EXPECT_EQ(clean.lastStateHash, out.lastStateHash);
}

TEST(SimCoreSnapshot, KillMidRunRetryUnderEvent)
{
    // The standard kill/auto-retry round trip, entirely under the
    // event core: halting at an audit boundary and restoring must
    // reproduce a clean event-core run bit for bit.
    TempDir tmp;
    RunOptions opt;
    opt.tech = Technique::Dac;
    opt.gpu.numSms = 2;
    opt.scale = 1.0;
    opt.gpu.simCore = SimCore::Event;
    RunOutcome clean = runWorkload("SP", opt);
    ASSERT_TRUE(clean.ok()) << clean.error.what;
    ASSERT_GT(clean.stats.cycles, 3u * 4096);

    RunOptions ck = opt;
    ck.checkpoint.dir = tmp.path.string();
    ck.checkpoint.tag = "evck";
    ck.checkpoint.everyCycles = 4096;
    ck.checkpoint.haltAtCycle = clean.stats.cycles / 2;
    RunOutcome resumed = runWorkload("SP", ck);
    ASSERT_TRUE(resumed.ok()) << resumed.error.what;
    EXPECT_TRUE(resumed.resumed);
    EXPECT_TRUE(clean.stats == resumed.stats);
    EXPECT_EQ(clean.checksums, resumed.checksums);
    EXPECT_EQ(clean.hashChain, resumed.hashChain);
}
