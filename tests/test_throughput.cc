/**
 * @file
 * Host-throughput layer tests: the idle-cycle fast-forward and the
 * parallel sweep must be pure host-side optimizations — every
 * simulated statistic and output checksum stays bit-identical with
 * them on or off, at any worker count, with or without an active
 * fault-injection plan.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/runner.h"
#include "harness/sweep.h"

using namespace dacsim;

namespace
{

RunOutcome
runWith(const char *bench, Technique tech, SimCore core,
        double scale = 0.15)
{
    RunOptions opt;
    opt.scale = scale;
    opt.tech = tech;
    opt.gpu.simCore = core;
    return runWorkload(bench, opt);
}

void
expectIdentical(const RunOutcome &a, const RunOutcome &b,
                const char *what)
{
    EXPECT_TRUE(a.error.ok()) << what;
    EXPECT_TRUE(b.error.ok()) << what;
    EXPECT_TRUE(a.stats == b.stats) << what;
    EXPECT_EQ(a.checksums, b.checksums) << what;
}

TEST(SimCore, EventByDefaultInConfig)
{
    EXPECT_TRUE(GpuConfig{}.simCore == SimCore::Event);
}

TEST(FastForward, MemoryIntensiveStatsIdentical)
{
    // SP's long memory-latency idle windows are where fast-forward
    // actually jumps; the full RunStats must still match exactly.
    for (Technique t : {Technique::Baseline, Technique::Dac}) {
        RunOutcome off = runWith("SP", t, SimCore::Stepped);
        RunOutcome on = runWith("SP", t, SimCore::FastForward);
        expectIdentical(off, on, "SP");
    }
}

TEST(FastForward, ComputeIntensiveStatsIdentical)
{
    for (Technique t : {Technique::Baseline, Technique::Cae}) {
        RunOutcome off = runWith("BS", t, SimCore::Stepped);
        RunOutcome on = runWith("BS", t, SimCore::FastForward);
        expectIdentical(off, on, "BS");
    }
}

TEST(FastForward, MtaPrefetcherStatsIdentical)
{
    // The MTA prefetch buffer and its MSHR pool exercise the
    // pfOutstanding release path of the next-event computation.
    RunOutcome off = runWith("LIB", Technique::Mta, SimCore::Stepped);
    RunOutcome on = runWith("LIB", Technique::Mta, SimCore::FastForward);
    expectIdentical(off, on, "LIB/MTA");
}

TEST(Sweep, JobsRespectsEnvironment)
{
    // parallelFor with an explicit jobs argument bypasses the env; the
    // env path itself is covered by sweepJobs() clamping to >= 1.
    EXPECT_GE(sweepJobs(), 1);
}

TEST(Sweep, ParallelMatchesSerial)
{
    struct Job
    {
        const char *bench;
        Technique tech;
    };
    const Job jobs[] = {
        {"SP", Technique::Baseline}, {"SP", Technique::Dac},
        {"BS", Technique::Baseline}, {"BS", Technique::Cae},
        {"LIB", Technique::Mta},     {"FFT", Technique::Dac},
    };
    constexpr std::size_t n = sizeof jobs / sizeof jobs[0];

    auto sweep = [&](int workers) {
        std::vector<RunOutcome> out(n);
        parallelFor(
            n,
            [&](std::size_t i) {
                out[i] = runWith(jobs[i].bench, jobs[i].tech,
                                 SimCore::Event, 0.12);
            },
            workers);
        return out;
    };
    std::vector<RunOutcome> serial = sweep(1);
    std::vector<RunOutcome> parallel = sweep(4);
    for (std::size_t i = 0; i < n; ++i)
        expectIdentical(serial[i], parallel[i], jobs[i].bench);
}

TEST(Sweep, ParallelMatchesSerialUnderFaultPlan)
{
    // Fault injection disables fast-forward internally and perturbs
    // the memory system deterministically; a parallel sweep must still
    // reproduce the serial outcomes bit-for-bit, including the
    // injected-fault counters.
    FaultPlan plan =
        FaultPlan::parse("seed=7;mshr@0-50000:16;jitter@0:300");
    auto sweep = [&](int workers) {
        const char *benches[] = {"SP", "LIB", "FFT"};
        std::vector<RunOutcome> out(3);
        parallelFor(
            3,
            [&](std::size_t i) {
                RunOptions opt;
                opt.scale = 0.12;
                opt.tech = Technique::Dac;
                opt.faults = plan;
                out[i] = runWorkload(benches[i], opt);
            },
            workers);
        return out;
    };
    std::vector<RunOutcome> serial = sweep(1);
    std::vector<RunOutcome> parallel = sweep(4);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(serial[i].stats == parallel[i].stats);
        EXPECT_EQ(serial[i].checksums, parallel[i].checksums);
        EXPECT_EQ(serial[i].fellBack, parallel[i].fellBack);
        EXPECT_EQ(serial[i].error.kind, parallel[i].error.kind);
    }
}

TEST(Sweep, LowestIndexExceptionWins)
{
    try {
        parallelFor(
            8,
            [](std::size_t i) {
                if (i == 2 || i == 5)
                    throw std::runtime_error(i == 2 ? "two" : "five");
            },
            4);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ("two", e.what());
    }
}

TEST(Sweep, InlineWhenSingleJob)
{
    // jobs=1 must run on the calling thread (printing-safety for
    // callers that rely on it).
    std::vector<int> order;
    parallelFor(3, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
                1);
    EXPECT_EQ((std::vector<int>{0, 1, 2}), order);
}

} // namespace
