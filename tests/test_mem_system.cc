/**
 * @file
 * Memory hierarchy tests: tag array replacement and DAC lock
 * counters, MSHR limiting and merging, L2/DRAM latency and bandwidth,
 * the MTA prefetch buffer path, and the perfect-memory mode.
 */

#include <gtest/gtest.h>

#include "mem/coalescer.h"
#include "mem/gpu_memory.h"
#include "mem/mem_system.h"
#include "mem/tag_array.h"

using namespace dacsim;

namespace
{

CacheConfig
smallCache(int lines, int ways)
{
    CacheConfig c;
    c.sizeBytes = lines * lineSizeBytes;
    c.ways = ways;
    c.hitLatency = 1;
    return c;
}

TEST(TagArray, HitAfterFill)
{
    TagArray t(smallCache(8, 2));
    EXPECT_EQ(t.find(0), nullptr);
    ASSERT_NE(t.fill(0).line, nullptr);
    EXPECT_NE(t.find(0), nullptr);
    EXPECT_NE(t.access(0), nullptr);
}

TEST(TagArray, LruEviction)
{
    TagArray t(smallCache(4, 2)); // 2 sets x 2 ways
    // Three lines mapping to set 0 (set = line index % 2).
    Addr a = 0 * lineSizeBytes, b = 2 * lineSizeBytes,
         c = 4 * lineSizeBytes;
    t.fill(a);
    t.fill(b);
    t.access(a); // a is now MRU
    auto res = t.fill(c);
    EXPECT_TRUE(res.evictedValid);
    EXPECT_NE(t.find(a), nullptr); // survived
    EXPECT_EQ(t.find(b), nullptr); // evicted (LRU)
    EXPECT_NE(t.find(c), nullptr);
}

TEST(TagArray, LockedLinesNotEvicted)
{
    TagArray t(smallCache(4, 2));
    Addr a = 0, b = 2 * lineSizeBytes, c = 4 * lineSizeBytes,
         d = 6 * lineSizeBytes;
    t.fill(a).line->lockCount = 1;
    t.fill(b);
    t.fill(c); // evicts b (a is locked)
    EXPECT_NE(t.find(a), nullptr);
    EXPECT_EQ(t.find(b), nullptr);
    // Lock c too: now the whole set is locked; fills must fail.
    t.find(c)->lockCount = 1;
    EXPECT_EQ(t.fill(d).line, nullptr);
}

TEST(TagArray, LockSaturation)
{
    TagArray t(smallCache(6, 3)); // 2 sets x 3 ways
    Addr a = 0, b = 2 * lineSizeBytes, c = 4 * lineSizeBytes;
    t.fill(a).line->lockCount = 1;
    EXPECT_FALSE(t.lockSaturated(a));
    t.fill(b).line->lockCount = 1;
    // ways-1 = 2 locked: saturated (cannot lock a third).
    EXPECT_TRUE(t.lockSaturated(c));
    EXPECT_EQ(t.lockedLines(), 2);
}

TEST(TagArray, PrefetchUnusedEvictionTracking)
{
    TagArray t(smallCache(2, 1)); // direct-mapped, 2 sets
    auto f = t.fill(0);
    f.line->prefetched = true;
    auto res = t.fill(2 * lineSizeBytes); // same set, evicts
    EXPECT_TRUE(res.evictedPrefetchedUnused);
    // A referenced prefetched line does not count as unused.
    auto g = t.fill(4 * lineSizeBytes);
    g.line->prefetched = true;
    t.access(4 * lineSizeBytes);
    auto res2 = t.fill(6 * lineSizeBytes);
    EXPECT_FALSE(res2.evictedPrefetchedUnused);
}

// ----- coalescer -----------------------------------------------------------

TEST(Coalescer, UnitStrideOneLine)
{
    std::array<Addr, warpSize> addrs{};
    for (int i = 0; i < warpSize; ++i)
        addrs[i] = 0x1000 + 4 * i;
    auto lines = coalesce(addrs, fullMask, 4);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u);
}

TEST(Coalescer, StrideTwoLines)
{
    std::array<Addr, warpSize> addrs{};
    for (int i = 0; i < warpSize; ++i)
        addrs[i] = 0x1000 + 8 * i;
    EXPECT_EQ(coalesce(addrs, fullMask, 4).size(), 2u);
}

TEST(Coalescer, ScatteredLines)
{
    std::array<Addr, warpSize> addrs{};
    for (int i = 0; i < warpSize; ++i)
        addrs[i] = static_cast<Addr>(i) * 1024;
    EXPECT_EQ(coalesce(addrs, fullMask, 4).size(), 32u);
}

TEST(Coalescer, RespectsActiveMask)
{
    std::array<Addr, warpSize> addrs{};
    for (int i = 0; i < warpSize; ++i)
        addrs[i] = static_cast<Addr>(i) * 1024;
    EXPECT_EQ(coalesce(addrs, 0x3, 4).size(), 2u);
    EXPECT_EQ(coalesce(addrs, 0, 4).size(), 0u);
}

TEST(Coalescer, StraddlingAccessTakesTwoLines)
{
    std::array<Addr, warpSize> addrs{};
    addrs[0] = lineSizeBytes - 2;
    auto lines = coalesce(addrs, 0x1, 4);
    ASSERT_EQ(lines.size(), 2u);
}

TEST(Coalescer, BroadcastOneLine)
{
    std::array<Addr, warpSize> addrs{};
    addrs.fill(0x4000);
    EXPECT_EQ(coalesce(addrs, fullMask, 4).size(), 1u);
}

// ----- memory system timing -------------------------------------------------

struct MemFixture : ::testing::Test
{
    GpuConfig cfg;
    RunStats stats;

    MemFixture()
    {
        cfg.numSms = 2;
    }
};

TEST_F(MemFixture, MissThenHit)
{
    MemorySystem ms(cfg, &stats);
    AccessResult miss = ms.load(0, 0x1000 & ~127ull, 0,
                                Requester::Demand);
    ASSERT_TRUE(miss.accepted);
    EXPECT_FALSE(miss.l1Hit);
    EXPECT_GT(miss.ready, static_cast<Cycle>(cfg.dram.latency));
    // Second access to the same line after arrival: an L1 hit.
    AccessResult hit = ms.load(0, 0x1000 & ~127ull, miss.ready + 1,
                               Requester::Demand);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.ready, miss.ready + 1 + cfg.l1.hitLatency);
    EXPECT_EQ(stats.l1Hits, 1u);
    EXPECT_EQ(stats.l1Misses, 1u);
}

TEST_F(MemFixture, MshrMergeBeforeArrival)
{
    MemorySystem ms(cfg, &stats);
    AccessResult first = ms.load(0, 0, 0, Requester::Demand);
    // Another request for the same line while in flight merges.
    AccessResult merge = ms.load(0, 0, 5, Requester::Demand);
    EXPECT_TRUE(merge.accepted);
    EXPECT_EQ(merge.ready, first.ready);
    EXPECT_EQ(stats.l1Misses, 1u); // no extra miss traffic
    EXPECT_EQ(stats.dramAccesses, 1u);
}

TEST_F(MemFixture, MshrLimitRejects)
{
    MemorySystem ms(cfg, &stats);
    int accepted = 0;
    for (int i = 0; i < cfg.l1.mshrs + 8; ++i) {
        AccessResult r = ms.load(0, static_cast<Addr>(i) * 128, 0,
                                 Requester::Demand);
        accepted += r.accepted;
    }
    EXPECT_EQ(accepted, cfg.l1.mshrs);
    EXPECT_EQ(ms.freeMshrs(0, 0), 0);
    // MSHRs free up once data arrives.
    EXPECT_GT(ms.freeMshrs(0, 100000), 0);
}

TEST_F(MemFixture, L2HitIsFasterThanDram)
{
    MemorySystem ms(cfg, &stats);
    AccessResult cold = ms.load(0, 0, 0, Requester::Demand);
    // SM 1 misses L1 but hits the shared L2.
    AccessResult warm = ms.load(1, 0, cold.ready + 1, Requester::Demand);
    EXPECT_FALSE(warm.l1Hit);
    EXPECT_LT(warm.ready - (cold.ready + 1),
              static_cast<Cycle>(cfg.dram.latency));
    EXPECT_EQ(stats.l2Hits, 1u);
}

TEST_F(MemFixture, DramBandwidthSerializes)
{
    MemorySystem ms(cfg, &stats);
    // Many lines on the same partition (stride by partitions*line).
    Addr stride = static_cast<Addr>(cfg.dram.partitions) * 128;
    Cycle last = 0;
    const int n = 20;
    for (int i = 0; i < n; ++i) {
        AccessResult r =
            ms.load(0, static_cast<Addr>(i) * stride, 0,
                    Requester::Demand);
        last = std::max(last, r.ready);
    }
    // The last response is delayed by the per-line service interval.
    EXPECT_GE(last, static_cast<Cycle>(cfg.dram.latency +
                                       (n - 1) * cfg.dram.cyclesPerLine));
}

TEST_F(MemFixture, LockUnlockRoundTrip)
{
    MemorySystem ms(cfg, &stats);
    ms.load(0, 0, 0, Requester::DacEarly);
    ASSERT_TRUE(ms.canLock(0, 0));
    ms.lock(0, 0);
    ms.unlock(0, 0);
    EXPECT_TRUE(ms.canLock(0, 0));
}

TEST_F(MemFixture, LockSaturationBlocksNewLocks)
{
    MemorySystem ms(cfg, &stats);
    // Fill one set with locked lines: set index repeats every
    // numSets lines.
    int sets = cfg.l1.numSets();
    for (int w = 0; w < cfg.l1.ways - 1; ++w) {
        Addr line = static_cast<Addr>(w) * sets * 128;
        ms.load(0, line, 0, Requester::DacEarly);
        ASSERT_TRUE(ms.canLock(0, line));
        ms.lock(0, line);
    }
    Addr another = static_cast<Addr>(cfg.l1.ways) * sets * 128;
    EXPECT_FALSE(ms.canLock(0, another));
    // An already-locked line may be locked again.
    EXPECT_TRUE(ms.canLock(0, 0));
}

TEST_F(MemFixture, PrefetchBufferServesDemand)
{
    MtaConfig mta;
    MemorySystem ms(cfg, &stats);
    ms.enablePrefetchBuffer(mta);
    ms.prefetch(0, 0x2000 & ~127ull, 0);
    EXPECT_EQ(stats.prefetchesIssued, 1u);
    AccessResult r = ms.load(0, 0x2000 & ~127ull, 10000,
                             Requester::Demand);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(stats.prefetchHits, 1u);
    EXPECT_LE(r.ready, 10000u + 4);
}

TEST_F(MemFixture, PrefetchSharesMshrs)
{
    MtaConfig mta;
    MemorySystem ms(cfg, &stats);
    ms.enablePrefetchBuffer(mta);
    for (int i = 0; i < cfg.l1.mshrs; ++i)
        ms.prefetch(0, static_cast<Addr>(i) * 128, 0);
    // All MSHRs consumed by prefetches: demand misses rejected...
    AccessResult r = ms.load(0, 1 << 20, 0, Requester::Demand);
    EXPECT_FALSE(r.accepted);
    // ...and further prefetches silently dropped.
    std::uint64_t before = stats.prefetchesIssued;
    ms.prefetch(0, 1 << 21, 0);
    EXPECT_EQ(stats.prefetchesIssued, before);
}

TEST_F(MemFixture, PerfectMemoryAlwaysHits)
{
    cfg.perfectMemory = true;
    MemorySystem ms(cfg, &stats);
    for (int i = 0; i < 100; ++i) {
        AccessResult r = ms.load(0, static_cast<Addr>(i) * 128, 0,
                                 Requester::Demand);
        EXPECT_TRUE(r.accepted);
        EXPECT_EQ(r.ready, static_cast<Cycle>(cfg.l1.hitLatency));
    }
    EXPECT_EQ(stats.dramAccesses, 0u);
}

TEST_F(MemFixture, StoresConsumeBandwidthNotMshrs)
{
    MemorySystem ms(cfg, &stats);
    for (int i = 0; i < 100; ++i)
        ms.store(0, static_cast<Addr>(i) * 128, 0);
    EXPECT_EQ(ms.freeMshrs(0, 0), cfg.l1.mshrs);
    EXPECT_EQ(stats.dramAccesses, 100u);
}

// ----- functional backing store ---------------------------------------------

TEST(GpuMemory, TypedAccessWidths)
{
    GpuMemory m;
    m.store(100, -2, MemWidth::S8);
    EXPECT_EQ(m.load(100, MemWidth::S8), -2);
    EXPECT_EQ(m.load(100, MemWidth::U8), 254);
    m.store(200, 0x12345678, MemWidth::U32);
    EXPECT_EQ(m.load(200, MemWidth::U32), 0x12345678);
    EXPECT_EQ(m.load(200, MemWidth::U16), 0x5678);
    m.store(300, -1, MemWidth::U64);
    EXPECT_EQ(m.load(300, MemWidth::U64), -1);
}

TEST(GpuMemory, SparsePagesDefaultZero)
{
    GpuMemory m;
    EXPECT_EQ(m.load(1ull << 40, MemWidth::U32), 0);
}

TEST(GpuMemory, AllocatorAlignsAndSeparates)
{
    GpuMemory m;
    Addr a = m.alloc(100);
    Addr b = m.alloc(100);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(GpuMemory, ChecksumDetectsChanges)
{
    GpuMemory m;
    Addr a = m.alloc(64);
    auto c1 = m.checksum(a, 64);
    m.writeByte(a + 13, 7);
    EXPECT_NE(m.checksum(a, 64), c1);
}

} // namespace
