/**
 * @file
 * Divergent affine value tests: variant creation via overlay/select
 * (the DCRF mechanism of Section 4.6), variant-wise arithmetic, the
 * 4-variant budget, and exact per-thread evaluation.
 */

#include <gtest/gtest.h>

#include "dac/affine_value.h"

using namespace dacsim;

namespace
{

MaskSet
masks(std::initializer_list<ThreadMask> ms)
{
    return MaskSet(ms);
}

TEST(MaskSetOps, Basics)
{
    MaskSet a = masks({0xff, 0x0f});
    MaskSet b = masks({0x0f, 0xff});
    EXPECT_EQ(maskSetAnd(a, b), masks({0x0f, 0x0f}));
    EXPECT_EQ(maskSetAndNot(a, b), masks({0xf0, 0x00}));
    EXPECT_EQ(maskSetOr(a, b), masks({0xff, 0xff}));
    EXPECT_TRUE(maskSetAny(a));
    EXPECT_TRUE(maskSetEmpty(masks({0, 0})));
    EXPECT_FALSE(maskSetEmpty(a));
}

TEST(AffineValue, UniformEvaluation)
{
    AffineValue v = AffineValue::uniform(AffineTuple::scalar(9));
    EXPECT_TRUE(v.isUniform());
    EXPECT_EQ(v.evalThread(0, 5, {5, 0, 0}, {}), 9);
    EXPECT_EQ(v.evalThread(1, 31, {31, 0, 0}, {}), 9);
}

TEST(AffineValue, OverlayCreatesVariants)
{
    const MaskSet full = masks({fullMask, fullMask});
    AffineValue v = AffineValue::uniform(AffineTuple::scalar(1));
    // Threads of warp 0's lower half take value 2.
    MaskSet m = masks({0x0000ffff, 0});
    ASSERT_TRUE(v.overlay(AffineValue::uniform(AffineTuple::scalar(2)), m,
                          full));
    EXPECT_EQ(v.numVariants(), 2);
    EXPECT_EQ(v.evalThread(0, 3, {3, 0, 0}, {}), 2);
    EXPECT_EQ(v.evalThread(0, 20, {20, 0, 0}, {}), 1);
    EXPECT_EQ(v.evalThread(1, 3, {3, 0, 0}, {}), 1);
}

TEST(AffineValue, OverlayFullMaskReplaces)
{
    const MaskSet full = masks({fullMask});
    AffineValue v = AffineValue::uniform(AffineTuple::scalar(1));
    ASSERT_TRUE(v.overlay(AffineValue::uniform(AffineTuple::scalar(2)),
                          full, full));
    EXPECT_TRUE(v.isUniform());
    EXPECT_EQ(v.onlyTuple().base, 2);
}

TEST(AffineValue, NormalizeMergesIdenticalTuples)
{
    const MaskSet full = masks({fullMask});
    AffineValue v = AffineValue::uniform(AffineTuple::scalar(1));
    // Overlaying the same value keeps it uniform after normalization.
    ASSERT_TRUE(v.overlay(AffineValue::uniform(AffineTuple::scalar(1)),
                          masks({0xff}), full));
    EXPECT_TRUE(v.isUniform());
}

TEST(AffineValue, SelectPaperFigure14)
{
    // Path A: offset = tid*4; Path B: offset = 0 (Figure 14's case).
    const MaskSet full = masks({fullMask});
    AffineTuple a;
    a.tidOff[0] = 4;
    AffineValue addrA = AffineValue::uniform(a);
    AffineValue addrB = AffineValue::uniform(AffineTuple::scalar(0));
    MaskSet takeA = masks({0x000000ff});
    auto sel = AffineValue::select(addrA, addrB, takeA, full);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(sel->numVariants(), 2);
    EXPECT_EQ(sel->evalThread(0, 2, {2, 0, 0}, {}), 8);   // path A
    EXPECT_EQ(sel->evalThread(0, 12, {12, 0, 0}, {}), 0); // path B
}

TEST(AffineValue, ApplyUniformFastPath)
{
    const MaskSet full = masks({fullMask});
    AffineValue a = AffineValue::uniform(AffineTuple::tid(0));
    AffineValue b = AffineValue::uniform(AffineTuple::scalar(100));
    auto r = AffineValue::apply(Opcode::Add, a, b, {}, full);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->isUniform());
    EXPECT_EQ(r->evalThread(0, 7, {7, 0, 0}, {}), 107);
}

TEST(AffineValue, ApplyDistributesOverVariants)
{
    const MaskSet full = masks({fullMask});
    AffineValue a = AffineValue::uniform(AffineTuple::scalar(10));
    ASSERT_TRUE(a.overlay(AffineValue::uniform(AffineTuple::scalar(20)),
                          masks({0xffff0000}), full));
    AffineValue b = AffineValue::uniform(AffineTuple::tid(0));
    auto r = AffineValue::apply(Opcode::Add, a, b, {}, full);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->numVariants(), 2);
    EXPECT_EQ(r->evalThread(0, 1, {1, 0, 0}, {}), 11);
    EXPECT_EQ(r->evalThread(0, 17, {17, 0, 0}, {}), 37);
}

TEST(AffineValue, ApplyVariantCrossProduct)
{
    const MaskSet full = masks({fullMask});
    AffineValue a = AffineValue::uniform(AffineTuple::scalar(1));
    ASSERT_TRUE(a.overlay(AffineValue::uniform(AffineTuple::scalar(2)),
                          masks({0x0000ffff}), full));
    AffineValue b = AffineValue::uniform(AffineTuple::scalar(10));
    ASSERT_TRUE(b.overlay(AffineValue::uniform(AffineTuple::scalar(20)),
                          masks({0x00ff00ff}), full));
    auto r = AffineValue::apply(Opcode::Add, a, b, {}, full);
    ASSERT_TRUE(r.has_value());
    // Four regions: 2+20, 2+10, 1+20, 1+10.
    EXPECT_EQ(r->evalThread(0, 0, {0, 0, 0}, {}), 22);
    EXPECT_EQ(r->evalThread(0, 10, {10, 0, 0}, {}), 12);
    EXPECT_EQ(r->evalThread(0, 18, {18, 0, 0}, {}), 21);
    EXPECT_EQ(r->evalThread(0, 26, {26, 0, 0}, {}), 11);
}

TEST(AffineValue, VariantBudgetExceededFails)
{
    const MaskSet full = masks({fullMask});
    AffineValue v = AffineValue::uniform(AffineTuple::scalar(0));
    // Carve five distinct regions: the fifth overlay must fail.
    for (int i = 0; i < 4; ++i) {
        ThreadMask m = 0x3fu << (i * 6);
        bool ok = v.overlay(
            AffineValue::uniform(AffineTuple::scalar(i + 1)),
            masks({m}), full);
        if (i < 3)
            ASSERT_TRUE(ok) << i;
        else
            EXPECT_FALSE(ok);
    }
}

TEST(AffineValue, ApplyFailsOnNonRepresentable)
{
    const MaskSet full = masks({fullMask});
    AffineValue a = AffineValue::uniform(AffineTuple::tid(0));
    auto r = AffineValue::apply(Opcode::Mul, a, a, {}, full);
    EXPECT_FALSE(r.has_value());
}

} // namespace
