/**
 * @file
 * SIMT reconvergence stack tests (baseline per-warp stack and the
 * batch-wide Affine SIMT Stack of Section 4.5).
 */

#include <gtest/gtest.h>

#include "dac/affine_stack.h"
#include "sim/simt_stack.h"

using namespace dacsim;

namespace
{

TEST(SimtStack, StraightLineAdvance)
{
    SimtStack s;
    s.reset(fullMask);
    EXPECT_EQ(s.pc(), 0);
    s.advance(1);
    s.advance(2);
    EXPECT_EQ(s.pc(), 2);
    EXPECT_EQ(s.mask(), fullMask);
    EXPECT_EQ(s.depth(), 1);
}

TEST(SimtStack, DivergeAndReconverge)
{
    SimtStack s;
    s.reset(fullMask);
    s.advance(5);
    // Branch at 5: taken -> 10, fallthrough 6, reconverge at 20.
    s.diverge(10, 6, 20, 0x0000ffff, 0xffff0000);
    EXPECT_EQ(s.pc(), 10);
    EXPECT_EQ(s.mask(), 0x0000ffffu);
    EXPECT_EQ(s.depth(), 3);
    // Taken path runs to the reconvergence point.
    s.advance(11);
    s.advance(20); // pops the taken entry
    EXPECT_EQ(s.pc(), 6);
    EXPECT_EQ(s.mask(), 0xffff0000u);
    s.advance(7);
    s.advance(20); // pops the not-taken entry
    EXPECT_EQ(s.pc(), 20);
    EXPECT_EQ(s.mask(), fullMask);
    EXPECT_EQ(s.depth(), 1);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack s;
    s.reset(fullMask);
    s.diverge(10, 1, 30, 0x000000ff, 0xffffff00);
    EXPECT_EQ(s.mask(), 0x000000ffu);
    // Nested split on the taken path.
    s.diverge(20, 11, 25, 0x0000000f, 0x000000f0);
    EXPECT_EQ(s.mask(), 0x0000000fu);
    s.advance(25);
    EXPECT_EQ(s.mask(), 0x000000f0u);
    EXPECT_EQ(s.pc(), 11);
    s.advance(25);
    EXPECT_EQ(s.mask(), 0x000000ffu);
    EXPECT_EQ(s.pc(), 25);
    s.advance(30);
    EXPECT_EQ(s.mask(), 0xffffff00u);
    EXPECT_EQ(s.pc(), 1);
}

TEST(SimtStack, RetirePartial)
{
    SimtStack s;
    s.reset(fullMask);
    EXPECT_FALSE(s.retire(0x0000ffff));
    EXPECT_EQ(s.mask(), 0xffff0000u);
    EXPECT_TRUE(s.retire(0xffff0000));
    EXPECT_TRUE(s.empty());
}

TEST(SimtStack, RetireInsideDivergence)
{
    SimtStack s;
    s.reset(fullMask);
    s.diverge(10, 1, 30, 0x00ff, 0xff00);
    // The whole taken path exits.
    EXPECT_FALSE(s.retire(0x00ff));
    EXPECT_EQ(s.mask(), 0xff00u);
    EXPECT_EQ(s.pc(), 1);
}

TEST(SimtStack, NoReconvergencePoint)
{
    SimtStack s;
    s.reset(fullMask);
    s.diverge(10, 1, -1, 0x00ff, 0xff00);
    // Both paths run until exit; nothing pops on ordinary PCs.
    s.advance(11);
    s.advance(12);
    EXPECT_EQ(s.mask(), 0x00ffu);
    EXPECT_FALSE(s.retire(0x00ff));
    EXPECT_EQ(s.mask(), 0xff00u);
}

// ----- Affine SIMT Stack (mask sets over a warp batch) ---------------------

TEST(AffineStack, MirrorsWholeBatch)
{
    AffineStack s;
    MaskSet init = {fullMask, fullMask, 0x0000ffff};
    s.reset(init);
    EXPECT_EQ(s.mask(), init);
    // Divergence splits different warps differently.
    MaskSet taken = {0x000000ff, 0, 0x000000ff};
    MaskSet nottaken = maskSetAndNot(init, taken);
    s.diverge(10, 1, 20, taken, nottaken);
    EXPECT_EQ(s.mask(), taken);
    s.advance(20);
    EXPECT_EQ(s.mask(), nottaken);
    s.advance(20);
    EXPECT_EQ(s.mask(), init);
}

TEST(AffineStack, RetireEndsBatch)
{
    AffineStack s;
    MaskSet init = {fullMask, 0x3};
    s.reset(init);
    EXPECT_FALSE(s.retire({fullMask, 0x1}));
    EXPECT_TRUE(s.retire({0, 0x2}));
}

TEST(AffineStack, CountsWlsAndPwsAccesses)
{
    AffineStack s;
    s.reset({fullMask, fullMask});
    auto before = s.accesses();
    // A split where warp 0 is partial (needs a PWS) and warp 1 is
    // all-taken (WLS-only).
    s.diverge(10, 1, 20, {0x00ff, fullMask}, {0xff00, 0});
    auto after = s.accesses();
    EXPECT_GT(after.wls, before.wls);
    EXPECT_GT(after.pws, before.pws);
    // Exactly two PWS touches: warp 0 in each pushed path entry.
    EXPECT_EQ(after.pws - before.pws, 2u);
}

TEST(AffineStack, TracksMaxDepth)
{
    AffineStack s;
    s.reset({fullMask});
    s.diverge(10, 1, 20, {0x1}, {fullMask & ~1u});
    EXPECT_GE(s.maxDepthSeen(), 3);
}

} // namespace
