/**
 * @file
 * Harness-level tests: RunOptions behaviour (perfect memory, scaling,
 * technique selection), per-launch parameters, and the derived
 * decoupling summary the benches rely on.
 */

#include <gtest/gtest.h>

#include "harness/runner.h"

using namespace dacsim;

namespace
{

TEST(Harness, PerfectMemoryIsFaster)
{
    RunOptions opt;
    opt.scale = 0.12;
    RunOutcome real = runWorkload("LIB", opt);
    opt.perfectMemory = true;
    RunOutcome perfect = runWorkload("LIB", opt);
    EXPECT_LT(perfect.stats.cycles, real.stats.cycles);
    EXPECT_EQ(perfect.stats.dramAccesses, 0u);
    // Functional results are unaffected by the memory model.
    EXPECT_EQ(perfect.checksums, real.checksums);
}

TEST(Harness, ScaleChangesWorkAmount)
{
    RunOptions small, big;
    small.scale = 0.12;
    big.scale = 0.3;
    RunOutcome s = runWorkload("SP", small);
    RunOutcome b = runWorkload("SP", big);
    EXPECT_GT(b.stats.warpInsts, s.stats.warpInsts);
}

TEST(Harness, DecouplingSummaryExposed)
{
    RunOptions opt;
    opt.scale = 0.12;
    opt.tech = Technique::Dac;
    RunOutcome r = runWorkload("LIB", opt);
    EXPECT_TRUE(r.anyDecoupled);
    EXPECT_GT(r.numDecoupledLoads, 0);
    EXPECT_GT(r.numDecoupledStores, 0);
    EXPECT_GT(r.numDecoupledPreds, 0);
}

TEST(Harness, PerLaunchParamsDriveIteration)
{
    // BFS uses one parameter set per frontier level; its distance
    // array must show several distinct levels afterwards.
    RunOptions opt;
    opt.scale = 0.12;
    RunOutcome r = runWorkload("BFS", opt);
    EXPECT_FALSE(r.checksums.empty());
    // A second identical run is deterministic.
    RunOutcome r2 = runWorkload("BFS", opt);
    EXPECT_EQ(r.checksums, r2.checksums);
    EXPECT_EQ(r.stats.cycles, r2.stats.cycles);
}

TEST(Harness, DeterministicAcrossRepeats)
{
    for (const char *name : {"FFT", "HS", "MC"}) {
        RunOptions opt;
        opt.scale = 0.12;
        opt.tech = Technique::Dac;
        RunOutcome a = runWorkload(name, opt);
        RunOutcome b = runWorkload(name, opt);
        EXPECT_EQ(a.stats.cycles, b.stats.cycles) << name;
        EXPECT_EQ(a.checksums, b.checksums) << name;
    }
}

TEST(Harness, MultipleLaunchesAccumulateStats)
{
    // SR1 launches twice: cycles and instructions accumulate.
    RunOptions opt;
    opt.scale = 0.12;
    RunOutcome r = runWorkload("SR1", opt);
    EXPECT_GT(r.stats.warpInsts, 0u);
    EXPECT_GT(r.stats.cycles, 0u);
}

} // namespace
