/**
 * @file
 * Differential fuzzing: generate random (but well-formed and
 * race-free) kernels mixing affine address arithmetic, mod-indexed
 * gathers, divergent diamonds, guarded instructions and scalar loops,
 * then require bit-identical final memory between the baseline and
 * each technique (CAE, MTA, DAC). Every seed is an independent
 * parameterized test, so a failure pinpoints its generator seed.
 *
 * The generator is deterministic (xorshift from the seed) and avoids
 * undefined behaviour by masking multiplication results and keeping
 * all addresses in bounds via mod-by-buffer-size indexing; stores go
 * only to the thread's own output slot, so results are schedule-
 * independent.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/pass_manager.h"
#include "harness/runner.h"
#include "compiler/cfg.h"
#include "compiler/decoupler.h"
#include "isa/assembler.h"
#include "mem/gpu_memory.h"
#include "sim/gpu.h"

using namespace dacsim;

namespace
{

class FuzzRng
{
  public:
    explicit FuzzRng(std::uint64_t seed) : s_(seed * 2654435761u + 1) {}

    std::uint64_t
    next()
    {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return s_;
    }

    int
    range(int lo, int hi) // inclusive
    {
        return lo + static_cast<int>(next() %
                                     static_cast<std::uint64_t>(
                                         hi - lo + 1));
    }

    bool chance(int pct) { return range(1, 100) <= pct; }

  private:
    std::uint64_t s_;
};

/** Builds one random kernel as assembly text. */
class KernelGen
{
  public:
    explicit KernelGen(std::uint64_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        os_ << ".kernel fuzz\n.param IN OUT elems\n";
        // r0 = global thread id; r1 = running accumulator.
        emit("mul r0, ctaid.x, ntid.x");
        emit("add r0, r0, tid.x");
        emit("mov r1, 1");
        live_ = {0, 1};
        nextReg_ = 2;
        nextPred_ = 0;

        int statements = rng_.range(4, 12);
        for (int i = 0; i < statements; ++i)
            statement();

        if (rng_.chance(50))
            scalarLoop();

        // Store the accumulator to the thread's own slot.
        int a = fresh();
        emit("shl r" + std::to_string(a) + ", r0, 2");
        emit("add r" + std::to_string(a) + ", $OUT, r" +
             std::to_string(a));
        emit("st.global.u32 [r" + std::to_string(a) + "], r1");
        emit("exit");
        return os_.str();
    }

  private:
    FuzzRng rng_;
    std::ostringstream os_;
    std::vector<int> live_;
    int nextReg_ = 0;
    int nextPred_ = 0;

    void
    emit(const std::string &line)
    {
        os_ << "    " << line << ";\n";
    }

    int
    fresh()
    {
        return nextReg_++;
    }

    std::string
    r(int i)
    {
        return "r" + std::to_string(i);
    }

    std::string
    anyLive()
    {
        return r(live_[static_cast<std::size_t>(
            rng_.range(0, static_cast<int>(live_.size()) - 1))]);
    }

    std::string
    anySource()
    {
        switch (rng_.range(0, 4)) {
          case 0: return anyLive();
          case 1: return "tid.x";
          case 2: return "ctaid.x";
          case 3: return std::to_string(rng_.range(-64, 64));
          default: return "$elems";
        }
    }

    void
    maskInto(int reg)
    {
        // Keep values small to dodge signed-overflow UB in products.
        emit("and " + r(reg) + ", " + r(reg) + ", 1048575");
    }

    void
    statement()
    {
        switch (rng_.range(0, 3)) {
          case 0: aluOp(); break;
          case 1: gather(); break;
          case 2: diamond(); break;
          case 3: guarded(); break;
        }
    }

    void
    aluOp()
    {
        static const char *ops[] = {"add", "sub", "mul", "min",
                                    "max", "xor", "shl"};
        const char *op = ops[rng_.range(0, 6)];
        int d = fresh();
        std::string a = anySource();
        std::string b = std::string(op) == std::string("shl")
                            ? std::to_string(rng_.range(0, 4))
                            : anySource();
        emit(std::string(op) + " " + r(d) + ", " + a + ", " + b);
        maskInto(d);
        live_.push_back(d);
        emit("add r1, r1, " + r(d));
        emit("and r1, r1, 1048575");
    }

    void
    gather()
    {
        // addr = IN + 4 * ((expr) mod elems): always in bounds, and
        // affine whenever `expr` happened to be affine.
        int e = fresh();
        emit("add " + r(e) + ", " + anySource() + ", " + anySource());
        int m = fresh();
        emit("mod " + r(m) + ", " + r(e) + ", $elems");
        int a = fresh();
        emit("shl " + r(a) + ", " + r(m) + ", 2");
        emit("add " + r(a) + ", $IN, " + r(a));
        int v = fresh();
        emit("ld.global.u32 " + r(v) + ", [" + r(a) + "]");
        live_.push_back(v);
        emit("add r1, r1, " + r(v));
        emit("and r1, r1, 1048575");
    }

    void
    diamond()
    {
        int p = nextPred_++;
        static int label = 0;
        std::string tag = "D" + std::to_string(label++);
        static const char *cmps[] = {"lt", "ge", "eq", "ne"};
        emit("setp." + std::string(cmps[rng_.range(0, 3)]) + " p" +
             std::to_string(p) + ", " + anySource() + ", " +
             anySource());
        int d = fresh();
        emit("mov " + r(d) + ", " + std::to_string(rng_.range(0, 9)));
        os_ << "    @p" << p << " bra " << tag << "T;\n";
        emit("add " + r(d) + ", " + r(d) + ", 100");
        os_ << "    bra " << tag << "J;\n";
        os_ << tag << "T:\n";
        emit("add " + r(d) + ", " + r(d) + ", " + anySource());
        maskInto(d);
        os_ << tag << "J:\n";
        live_.push_back(d);
        emit("add r1, r1, " + r(d));
        emit("and r1, r1, 1048575");
    }

    void
    guarded()
    {
        int p = nextPred_++;
        emit("setp.lt p" + std::to_string(p) + ", " + anySource() +
             ", " + anySource());
        int d = fresh();
        emit("mov " + r(d) + ", 3");
        os_ << "    @p" << p << " add " << r(d) << ", " << r(d) << ", "
            << anySource() << ";\n";
        maskInto(d);
        live_.push_back(d);
        emit("add r1, r1, " + r(d));
        emit("and r1, r1, 1048575");
    }

    void
    scalarLoop()
    {
        int p = nextPred_++;
        int i = fresh();
        static int label = 0;
        std::string tag = "L" + std::to_string(label++);
        int trips = rng_.range(2, 6);
        emit("mov " + r(i) + ", 0");
        os_ << tag << ":\n";
        // A small body: accumulate a gather or an ALU mix.
        if (rng_.chance(60))
            gather();
        else
            aluOp();
        emit("add " + r(i) + ", " + r(i) + ", 1");
        emit("setp.lt p" + std::to_string(p) + ", " + r(i) + ", " +
             std::to_string(trips));
        os_ << "    @p" << p << " bra " << tag << ";\n";
    }
};

class FuzzEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzEquivalence, AllMachinesAgree)
{
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    KernelGen gen(seed);
    std::string src = gen.generate();
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + src);

    Kernel k = assemble(src);
    analyzeControlFlow(k);
    DacConfig dcfg;
    DecoupledKernel dec = decouple(k, dcfg);

    const int ctas = 6, block = 96, elems = 4096;
    const long long threads = static_cast<long long>(ctas) * block;

    std::vector<std::uint64_t> sums;
    for (Technique t : {Technique::Baseline, Technique::Cae,
                        Technique::Mta, Technique::Dac}) {
        GpuMemory gmem;
        Addr in = gmem.alloc(elems * 4);
        Addr out = gmem.alloc(static_cast<std::uint64_t>(threads) * 4);
        for (int i = 0; i < elems; ++i)
            gmem.store(in + 4ull * i, (i * 2654435761u) & 0xfffff,
                       MemWidth::U32);
        GpuConfig gcfg;
        gcfg.numSms = 4;
        Gpu gpu(gcfg, t, dcfg, CaeConfig{}, MtaConfig{}, gmem);
        std::vector<RegVal> params = {static_cast<RegVal>(in),
                                      static_cast<RegVal>(out), elems};
        LaunchInfo li;
        li.grid = {ctas, 1, 1};
        li.block = {block, 1, 1};
        li.params = &params;
        if (t == Technique::Dac) {
            li.kernel = &dec.nonAffine;
            li.affineKernel = &dec.affine;
        } else {
            li.kernel = &k;
        }
        gpu.launch(li);
        sums.push_back(gmem.checksum(
            out, static_cast<std::uint64_t>(threads) * 4));
    }
    EXPECT_EQ(sums[1], sums[0]) << "CAE diverged";
    EXPECT_EQ(sums[2], sums[0]) << "MTA diverged";
    EXPECT_EQ(sums[3], sums[0]) << "DAC diverged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence, ::testing::Range(1, 41));

/**
 * Analyzer fuzzing: mutate generated kernels in assembly-preserving
 * ways (inserted barriers, duplicated/deleted/swapped instructions,
 * injected suppression pragmas) and push them through the full static-
 * analysis pipeline — all six checkers including the decoupler
 * soundness audit. The mutations deliberately manufacture the
 * pathologies the checkers hunt (divergent barriers, dead stores,
 * reads of deleted definitions), so this exercises the reporting
 * paths, not just the clean ones. Requirements: no crash, and two
 * independently built pipelines render byte-identical reports.
 */
class FuzzLint : public ::testing::TestWithParam<int>
{
};

namespace
{

std::vector<std::string>
splitLines(const std::string &src)
{
    std::vector<std::string> lines;
    std::istringstream is(src);
    for (std::string l; std::getline(is, l);)
        lines.push_back(l);
    return lines;
}

bool
isInstLine(const std::string &l)
{
    return l.rfind("    ", 0) == 0 && l.find("exit") == std::string::npos;
}

void
mutateLines(std::vector<std::string> &lines, FuzzRng &rng)
{
    std::vector<int> insts;
    for (int i = 0; i < static_cast<int>(lines.size()); ++i)
        if (isInstLine(lines[static_cast<std::size_t>(i)]))
            insts.push_back(i);
    if (insts.empty())
        return;
    auto pick = [&] {
        return insts[static_cast<std::size_t>(
            rng.range(0, static_cast<int>(insts.size()) - 1))];
    };
    int at = pick();
    auto it = lines.begin() + at;
    switch (rng.range(0, 4)) {
      case 0: // a barrier, possibly under divergent control
        lines.insert(it, "    bar;");
        break;
      case 1: // duplicate: the first copy often becomes a dead store
        lines.insert(it, lines[static_cast<std::size_t>(at)]);
        break;
      case 2: // delete: later reads may become possibly-uninitialized
        lines.erase(it);
        break;
      case 3: { // swap adjacent instruction lines
        if (at + 1 < static_cast<int>(lines.size()) &&
            isInstLine(lines[static_cast<std::size_t>(at) + 1]))
            std::swap(lines[static_cast<std::size_t>(at)],
                      lines[static_cast<std::size_t>(at) + 1]);
        break;
      }
      default: // standalone pragma, carried to the next instruction
        lines.insert(it, "    // fuzz-injected. lint:allow(*)");
        break;
    }
}

} // namespace

TEST_P(FuzzLint, PipelineIsCrashFreeAndDeterministic)
{
    const auto seed = static_cast<std::uint64_t>(1000 + GetParam());
    KernelGen gen(seed);
    const std::string orig = gen.generate();

    FuzzRng mrng(seed * 7919 + 3);
    std::vector<std::string> lines = splitLines(orig);
    const int muts = mrng.range(1, 4);
    for (int i = 0; i < muts; ++i)
        mutateLines(lines, mrng);
    std::string mutated;
    for (const std::string &l : lines)
        mutated += l + "\n";

    Kernel k;
    try {
        k = assemble(mutated);
    } catch (const FatalError &) {
        // The mutation broke assembly (e.g. deleted a referenced
        // label's branch producer); lint the unmutated kernel instead.
        mutated = orig;
        k = assemble(orig);
    }
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + mutated);

    const LaunchBoundsHint launch{true, {96, 1, 1}};
    auto render = [&] {
        PassManager pm = PassManager::withAllCheckers();
        LintReport rep = pm.run(k, DacConfig{}, launch);
        return rep.renderText() + "\n" + rep.renderJson();
    };
    const std::string first = render();
    const std::string second = render();
    EXPECT_EQ(first, second) << "non-deterministic diagnostics";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLint, ::testing::Range(1, 41));

} // namespace
