/**
 * @file
 * Differential fuzzing, fixed regression tier.
 *
 * These tests drive the src/fuzz/ subsystem (generator, differential
 * oracle, mutator) over a FIXED seed range: seeds 1..40 for machine
 * equivalence and 1001..1040 for analyzer robustness. The ranges are
 * deliberately frozen — they are the cheap always-on tier that runs in
 * every ctest invocation; open-ended exploration belongs to the
 * dacsim-fuzz campaign driver (scripts/check.sh runs one per build
 * flavor). Campaign-level behaviour (crash isolation, journalled
 * resume, shrinking) is covered by test_fuzz_campaign.cc.
 */

#include <gtest/gtest.h>

#include "analysis/pass_manager.h"
#include "common/log.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "isa/assembler.h"

using namespace dacsim;
using namespace dacsim::fuzz;

namespace
{

// ---------------------------------------------------------------------
// Machine equivalence: baseline vs CAE vs MTA vs DAC on generated
// kernels, through the full oracle (lint gate, harness, hash chains).
// ---------------------------------------------------------------------

class FuzzEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzEquivalence, AllMachinesAgree)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const GeneratedKernel g = generateKernel(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + " (" +
                 g.params.describe() + ")\n" + g.source);

    const OracleVerdict v = runOracle(g.source, seed, OracleOptions{});
    EXPECT_TRUE(v.ok()) << oracleStatusName(v.status) << ": " << v.detail;
    ASSERT_EQ(v.techs.size(), 4u);
    for (const TechRecord &t : v.techs) {
        EXPECT_EQ(t.checksum, v.techs.front().checksum)
            << techniqueName(t.tech) << " diverged";
        EXPECT_EQ(t.error, RunErrorKind::None);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence, ::testing::Range(1, 41));

// ---------------------------------------------------------------------
// Generator contract: purity and parameter-point coverage.
// ---------------------------------------------------------------------

TEST(FuzzGenerator, SourceIsAPureFunctionOfTheSeed)
{
    // Byte-identical regeneration is what makes campaign resume and
    // cross-process repro (fork/exec children) work at all.
    for (std::uint64_t seed : {1ull, 7ull, 40ull, 123456789ull}) {
        const GeneratedKernel a = generateKernel(seed);
        const GeneratedKernel b = generateKernel(seed);
        EXPECT_EQ(a.source, b.source) << "seed " << seed;
        EXPECT_EQ(a.params.describe(), b.params.describe());
    }
}

TEST(FuzzGenerator, CoverageAxesAllOccur)
{
    // Over a modest seed range the parameter map must exercise every
    // axis: shared staging, indirection > 1, nested divergence, loops.
    bool shared = false, indirect = false, nested = false, loop = false;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const GenParams p = GenParams::fromSeed(seed);
        shared |= p.useShared;
        indirect |= p.indirectionDepth > 1;
        nested |= p.divergenceDepth > 1;
        loop |= p.scalarLoop;
    }
    EXPECT_TRUE(shared);
    EXPECT_TRUE(indirect);
    EXPECT_TRUE(nested);
    EXPECT_TRUE(loop);
}

TEST(FuzzGenerator, PinnedParamsAreHonoured)
{
    GenParams p;
    p.statements = 3;
    p.useShared = true;
    p.scalarLoop = false;
    const GeneratedKernel g = generateKernel(42, p);
    EXPECT_NE(g.source.find(".shared"), std::string::npos);
    EXPECT_NE(g.source.find("bar;"), std::string::npos);
    // Shared staging implies a barrier at top level only; the kernel
    // must still assemble and lint clean (no DAC-E002).
    Kernel k = assemble(g.source);
    PassManager pm = PassManager::withAllCheckers();
    LintReport rep = pm.run(k, DacConfig{}, {true, {p.blockThreads, 1, 1}});
    EXPECT_TRUE(rep.clean()) << rep.renderText();
}

// ---------------------------------------------------------------------
// Analyzer fuzzing: mutated kernels through all six checkers — no
// crash, and two independently built pipelines agree byte-for-byte.
// ---------------------------------------------------------------------

class FuzzLint : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzLint, PipelineIsCrashFreeAndDeterministic)
{
    const auto seed = static_cast<std::uint64_t>(1000 + GetParam());
    const std::string orig = generateKernel(seed).source;

    FuzzRng mrng(seed * 7919 + 3);
    std::string mutated = mutateSource(orig, mrng, mrng.range(1, 4));

    Kernel k;
    try {
        k = assemble(mutated);
    } catch (const FatalError &) {
        // The mutation broke assembly (e.g. deleted a referenced
        // label's branch producer); lint the unmutated kernel instead.
        mutated = orig;
        k = assemble(orig);
    }
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + mutated);

    const LaunchBoundsHint launch{true, {96, 1, 1}};
    auto render = [&] {
        PassManager pm = PassManager::withAllCheckers();
        LintReport rep = pm.run(k, DacConfig{}, launch);
        return rep.renderText() + "\n" + rep.renderJson();
    };
    const std::string first = render();
    const std::string second = render();
    EXPECT_EQ(first, second) << "non-deterministic diagnostics";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLint, ::testing::Range(1, 41));

} // namespace
