/**
 * @file
 * Affine type analysis tests: the opcode result-type rules (Section 3
 * / 4.4 / 4.6) and whole-kernel fixpoint behaviour including scalar
 * loops, affine-predicate divergence budgets, and data-dependent
 * control flow.
 */

#include <gtest/gtest.h>

#include "compiler/affine_types.h"
#include "compiler/cfg.h"
#include "compiler/reaching_defs.h"
#include "isa/assembler.h"

using namespace dacsim;

namespace
{

constexpr TypeInfo S{ValKind::Scalar, 0, false};
constexpr TypeInfo A{ValKind::Affine, 0, false};
constexpr TypeInfo Amod{ValKind::Affine, 0, true};
const TypeInfo N = TypeInfo::nonAffine();

TypeInfo
rt(Opcode op, std::vector<TypeInfo> srcs)
{
    return aluResultType(op, srcs, 2);
}

TEST(TypeRules, AddSub)
{
    EXPECT_EQ(rt(Opcode::Add, {S, S}).kind, ValKind::Scalar);
    EXPECT_EQ(rt(Opcode::Add, {S, A}).kind, ValKind::Affine);
    EXPECT_EQ(rt(Opcode::Add, {A, A}).kind, ValKind::Affine);
    EXPECT_EQ(rt(Opcode::Sub, {A, S}).kind, ValKind::Affine);
    EXPECT_TRUE(rt(Opcode::Add, {A, N}).isNonAffine());
    // Two mod terms cannot combine.
    EXPECT_TRUE(rt(Opcode::Add, {Amod, Amod}).isNonAffine());
    EXPECT_EQ(rt(Opcode::Add, {Amod, A}).kind, ValKind::Affine);
    EXPECT_TRUE(rt(Opcode::Add, {Amod, A}).hasMod);
}

TEST(TypeRules, MulIsScalarTimesAffineOnly)
{
    EXPECT_EQ(rt(Opcode::Mul, {S, S}).kind, ValKind::Scalar);
    EXPECT_EQ(rt(Opcode::Mul, {S, A}).kind, ValKind::Affine);
    EXPECT_EQ(rt(Opcode::Mul, {A, S}).kind, ValKind::Affine);
    EXPECT_TRUE(rt(Opcode::Mul, {A, A}).isNonAffine());
}

TEST(TypeRules, MadComposes)
{
    EXPECT_EQ(rt(Opcode::Mad, {S, A, A}).kind, ValKind::Affine);
    EXPECT_TRUE(rt(Opcode::Mad, {A, A, S}).isNonAffine());
}

TEST(TypeRules, ShiftsRequireScalarAmount)
{
    EXPECT_EQ(rt(Opcode::Shl, {A, S}).kind, ValKind::Affine);
    EXPECT_TRUE(rt(Opcode::Shl, {A, A}).isNonAffine());
    EXPECT_TRUE(rt(Opcode::Shr, {A, S}).isNonAffine());
    EXPECT_EQ(rt(Opcode::Shr, {S, S}).kind, ValKind::Scalar);
}

TEST(TypeRules, BitwiseScalarOnly)
{
    for (Opcode op : {Opcode::And, Opcode::Or, Opcode::Xor}) {
        EXPECT_EQ(rt(op, {S, S}).kind, ValKind::Scalar);
        EXPECT_TRUE(rt(op, {A, S}).isNonAffine());
    }
    EXPECT_EQ(rt(Opcode::Not, {S}).kind, ValKind::Scalar);
    EXPECT_TRUE(rt(Opcode::Not, {A}).isNonAffine());
}

TEST(TypeRules, ModMakesModType)
{
    TypeInfo r = rt(Opcode::Mod, {A, S});
    EXPECT_EQ(r.kind, ValKind::Affine);
    EXPECT_TRUE(r.hasMod);
    // scalar mod scalar stays plain scalar
    EXPECT_EQ(rt(Opcode::Mod, {S, S}).kind, ValKind::Scalar);
    EXPECT_FALSE(rt(Opcode::Mod, {S, S}).hasMod);
    // mod of a mod-type or by an affine divisor is out.
    EXPECT_TRUE(rt(Opcode::Mod, {Amod, S}).isNonAffine());
    EXPECT_TRUE(rt(Opcode::Mod, {A, A}).isNonAffine());
}

TEST(TypeRules, MinMaxAbsCostOneCondition)
{
    EXPECT_EQ(rt(Opcode::Min, {A, S}).conds, 1);
    EXPECT_EQ(rt(Opcode::Max, {A, A}).conds, 1);
    EXPECT_EQ(rt(Opcode::Min, {S, S}).conds, 0);
    EXPECT_EQ(rt(Opcode::Abs, {A}).conds, 1);
    EXPECT_EQ(rt(Opcode::Abs, {S}).conds, 0);
}

TEST(TypeRules, ConditionBudgetCapsToNonAffine)
{
    TypeInfo a1{ValKind::Affine, 1, false};
    TypeInfo a2{ValKind::Affine, 2, false};
    // 1+1 conditions plus the min's own = 3 > 2.
    EXPECT_TRUE(rt(Opcode::Min, {a1, a1}).isNonAffine());
    // 2 conditions propagate fine through add.
    EXPECT_EQ(rt(Opcode::Add, {a2, S}).conds, 2);
    // 2+1 through add exceeds the budget.
    EXPECT_TRUE(rt(Opcode::Add, {a2, a1}).isNonAffine());
}

TEST(TypeRules, SelSelectorCosts)
{
    TypeInfo ps{ValKind::Scalar, 0, false};
    TypeInfo pa{ValKind::Affine, 0, false};
    EXPECT_EQ(rt(Opcode::Sel, {A, A, ps}).conds, 0);
    EXPECT_EQ(rt(Opcode::Sel, {A, A, pa}).conds, 1);
    EXPECT_TRUE(rt(Opcode::Sel, {A, A, N}).isNonAffine());
}

TEST(TypeRules, SetpKinds)
{
    EXPECT_EQ(rt(Opcode::Setp, {S, S}).kind, ValKind::Scalar);
    EXPECT_EQ(rt(Opcode::Setp, {A, S}).kind, ValKind::Affine);
    EXPECT_EQ(rt(Opcode::Setp, {Amod, S}).kind, ValKind::Affine);
    EXPECT_TRUE(rt(Opcode::Setp, {N, S}).isNonAffine());
}

// ----- whole-kernel analysis ------------------------------------------------

struct Analysis
{
    Kernel kernel;
    Cfg cfg;
    ReachingDefs rd;
    AffineAnalysis aa;

    explicit Analysis(const std::string &body)
        : kernel(assemble(".kernel t\n.param A n\n" + body + "\nexit;\n")),
          cfg(analyzeControlFlow(kernel)), rd(kernel, cfg),
          aa(kernel, cfg, rd, 2)
    {
    }
};

TEST(AffineAnalysis, ThreadIdIsAffineParamsScalar)
{
    Analysis a("mul r0, ctaid.x, ntid.x;\n"
               "add r1, tid.x, r0;\n"
               "mov r2, $n;");
    EXPECT_EQ(a.aa.defType(0).kind, ValKind::Affine);
    EXPECT_EQ(a.aa.defType(1).kind, ValKind::Affine);
    EXPECT_EQ(a.aa.defType(2).kind, ValKind::Scalar);
}

TEST(AffineAnalysis, LoadedDataIsNonAffine)
{
    Analysis a("shl r0, tid.x, 2;\nadd r1, $A, r0;\n"
               "ld.global.u32 r2, [r1];\nadd r3, r2, tid.x;");
    EXPECT_EQ(a.aa.defType(1).kind, ValKind::Affine);
    EXPECT_TRUE(a.aa.defType(2).isNonAffine());
    EXPECT_TRUE(a.aa.defType(3).isNonAffine());
}

TEST(AffineAnalysis, ScalarLoopStaysScalar)
{
    // i and the derived address increment stay scalar/affine through
    // the loop-carried merge because the loop predicate is scalar.
    Analysis a("mov r0, 0;\nmov r1, $A;\n"
               "L:\n"
               "add r0, r0, 1;\n"
               "add r1, r1, 4;\n"
               "setp.lt p0, r0, $n;\n"
               "@p0 bra L;");
    EXPECT_EQ(a.aa.defType(2).kind, ValKind::Scalar); // i
    EXPECT_EQ(a.aa.defType(3).kind, ValKind::Scalar); // address
    EXPECT_EQ(a.aa.defType(4).kind, ValKind::Scalar); // predicate
}

TEST(AffineAnalysis, AffineLoopCarriedValueDegrades)
{
    // The loop bound depends on tid, so trip counts can differ per
    // thread: the loop-carried r0 is a divergent loop-carried tuple
    // and must degrade to NonAffine (Section 4.6).
    Analysis a("mov r0, 0;\n"
               "L:\n"
               "add r0, r0, 4;\n"
               "setp.lt p0, r0, tid.x;\n"
               "@p0 bra L;");
    EXPECT_TRUE(a.aa.defType(1).isNonAffine());
}

TEST(AffineAnalysis, DivergentDiamondCostsOneCondition)
{
    Analysis a("setp.lt p0, tid.x, 16;\n"
               "mov r0, 0;\n"
               "@p0 bra T;\n"
               "shl r0, tid.x, 2;\n"
               "T:\n"
               "add r1, r0, $A;");
    // r1's source r0 merges two defs under an affine condition.
    TypeInfo t = a.aa.defType(4);
    EXPECT_EQ(t.kind, ValKind::Affine);
    EXPECT_EQ(t.conds, 1);
}

TEST(AffineAnalysis, DataDependentDiamondPoisons)
{
    Analysis a("shl r2, tid.x, 2;\nadd r2, r2, $A;\n"
               "ld.global.u32 r3, [r2];\n"
               "setp.lt p0, r3, 0;\n"     // data-dependent predicate
               "mov r0, 0;\n"
               "@p0 bra T;\n"
               "mov r0, 4;\n"
               "T:\n"
               "add r1, r0, tid.x;");
    EXPECT_TRUE(a.aa.defType(7).isNonAffine());
}

TEST(AffineAnalysis, GuardedWriteCostsCondition)
{
    Analysis a("setp.lt p0, tid.x, 16;\n"
               "mov r0, 0;\n"
               "@p0 mov r0, 4;\n"
               "add r1, r0, 1;");
    TypeInfo t = a.aa.defType(3);
    EXPECT_EQ(t.kind, ValKind::Affine);
    EXPECT_GE(t.conds, 1);
}

TEST(AffineAnalysis, BlockResidency)
{
    Analysis a("shl r2, tid.x, 2;\nadd r2, r2, $A;\n"
               "ld.global.u32 r3, [r2];\n"
               "setp.lt p0, r3, 0;\n"
               "@p0 bra SKIP;\n"
               "add r4, tid.x, 1;\n"
               "SKIP:\n"
               "mov r5, 0;");
    // The guarded block is under data-dependent control: not resident.
    EXPECT_FALSE(a.aa.blockAffineResident(a.cfg.blockOf(5)));
    // Entry and the reconvergence block are resident.
    EXPECT_TRUE(a.aa.blockAffineResident(a.cfg.blockOf(0)));
    EXPECT_TRUE(a.aa.blockAffineResident(a.cfg.blockOf(7)));
}

TEST(AffineAnalysis, ModTupleThroughArithmetic)
{
    Analysis a("mod r0, tid.x, $n;\n"
               "shl r1, r0, 2;\n"
               "add r2, r1, $A;");
    EXPECT_TRUE(a.aa.defType(0).hasMod);
    EXPECT_TRUE(a.aa.defType(2).hasMod);
    EXPECT_EQ(a.aa.defType(2).kind, ValKind::Affine);
}

} // namespace
