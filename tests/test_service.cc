/**
 * @file
 * Simulation-service tests (DESIGN.md §14): the framed request codec
 * under malformed input (including the corruption corpus in
 * tests/corpus/service/), the CRC-verified result cache with
 * quarantine-on-corruption, the durable queue's kill/restart resume,
 * the shared fork-isolation primitives, and the daemon's full request
 * pipeline — caching, in-flight dedup, chaos-injected crash/timeout
 * retry, crash blacklisting, backlog resume, and the socket loop end
 * to end.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "harness/isolation.h"
#include "harness/journal.h"
#include "harness/runner.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/codec.h"
#include "service/daemon.h"
#include "service/queue.h"
#include "workloads/workload.h"

namespace fs = std::filesystem;
using namespace dacsim;
using namespace dacsim::service;

namespace
{

/** Per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = std::string("dacsim_svc_") +
                           info->test_suite_name() + "_" + info->name();
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        path = fs::temp_directory_path() / name;
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

/** A small but real job every daemon test uses. */
JobRequest
smallJob(Technique tech = Technique::Baseline)
{
    JobRequest rq;
    rq.id = 1;
    rq.bench = "BS";
    rq.tech = tech;
    rq.setScale(0.05);
    return rq;
}

RunOutcome
directRun(const JobRequest &rq)
{
    RunOptions opt;
    opt.tech = rq.tech;
    opt.scale = rq.scale();
    return runWorkload(rq.bench, opt);
}

DaemonOptions
poolOnlyOptions(const TempDir &tmp)
{
    DaemonOptions opt;
    opt.dir = (tmp.path / "state").string();
    opt.workers = 2;
    opt.timeoutMs = 60000;
    return opt;
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const fs::path &p, const std::string &s)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << s;
}

} // namespace

// ----- frame codec --------------------------------------------------------

TEST(ServiceCodec, FrameRoundTrip)
{
    std::string buf = frameMessage("hello service");
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    EXPECT_EQ(payload, "hello service");
    EXPECT_TRUE(buf.empty());
}

TEST(ServiceCodec, FrameDecodesIncrementally)
{
    const std::string wire = frameMessage("drip-fed payload");
    std::string buf, payload, detail;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        buf.push_back(wire[i]);
        EXPECT_EQ(popFrame(&buf, &payload, &detail),
                  FrameStatus::NeedMore);
    }
    buf.push_back(wire.back());
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    EXPECT_EQ(payload, "drip-fed payload");
}

TEST(ServiceCodec, FrameBackToBackMessages)
{
    std::string buf = frameMessage("first") + frameMessage("second");
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    EXPECT_EQ(payload, "first");
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    EXPECT_EQ(payload, "second");
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::NeedMore);
}

TEST(ServiceCodec, FrameRejectsBadMagic)
{
    std::string buf = "XYZW" + frameMessage("x").substr(4);
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::BadMagic);
    EXPECT_NE(detail.find("out of sync"), std::string::npos);
}

TEST(ServiceCodec, FrameRejectsOversizedLength)
{
    // A length field past the ceiling must be reported as corruption,
    // not used as an allocation size.
    std::string buf = frameMessage("x");
    buf[4] = '\xff';
    buf[5] = '\xff';
    buf[6] = '\xff';
    buf[7] = '\xff';
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Oversized);
    EXPECT_NE(detail.find("oversized"), std::string::npos);
}

TEST(ServiceCodec, FrameRejectsBadCrc)
{
    std::string buf = frameMessage("checksummed");
    buf[buf.size() - 1] ^= 0x20; // corrupt one payload byte
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::BadCrc);
    EXPECT_NE(detail.find("CRC"), std::string::npos);
}

TEST(ServiceCodec, MalformedCorpusNeverCrashes)
{
    const fs::path dir = fs::path(DACSIM_CORPUS_DIR) / "service";
    ASSERT_TRUE(fs::exists(dir));
    int files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".bin")
            continue;
        ++files;
        std::string buf = readFile(entry.path());
        std::string payload, detail;
        const FrameStatus st = popFrame(&buf, &payload, &detail);
        // Every corpus file is corrupt or incomplete: the decoder must
        // return a structured status, never Ok — and never crash.
        EXPECT_NE(st, FrameStatus::Ok) << entry.path();
        if (st != FrameStatus::NeedMore) {
            EXPECT_FALSE(detail.empty()) << entry.path();
        }
    }
    EXPECT_GE(files, 5);
}

// ----- request / response codec -------------------------------------------

TEST(ServiceCodec, RequestRoundTripIsExact)
{
    JobRequest rq;
    rq.id = 0xdeadbeefcafeull;
    rq.bench = "FFT";
    rq.tech = Technique::Dac;
    rq.setScale(0.3); // no exact binary representation: bits must survive
    rq.faultSpec = "seed=42;mshr@0-200000:30;jitter@0:400";
    JobRequest back;
    std::string err;
    ASSERT_TRUE(decodeRequest(encodeRequest(rq), &back, &err)) << err;
    EXPECT_EQ(back.id, rq.id);
    EXPECT_EQ(back.bench, rq.bench);
    EXPECT_EQ(back.tech, rq.tech);
    EXPECT_EQ(back.scaleBits, rq.scaleBits);
    EXPECT_EQ(back.scale(), 0.3);
    EXPECT_EQ(back.faultSpec, rq.faultSpec);
}

TEST(ServiceCodec, RequestRejectsMalformedPayloads)
{
    const char *bad[] = {
        "",                                    // empty
        "zz id=1 bench=BS tech=dac",           // unknown tag
        "q1 id=1 tech=dac scale=3ff0000000000000", // no bench
        "q1 id=1 bench=BS scale=3ff0000000000000", // no technique
        "q1 id=1 bench=BS tech=warp-drive",    // unknown technique
        "q1 id=1 bench=BS tech=dac bogus",     // field without '='
        "q1 id=1 bench=BS tech=dac color=red", // unknown key
        "q1 id=xyz bench=BS tech=dac",         // non-numeric id
        "q1 id=1 bench=BS tech=dac scale=zz",  // non-numeric scale
        "q1 id=1 bench=BS tech=dac scale=0",   // scale == 0
        "q1 id=1 bench=BS tech=dac scale=7ff0000000000000", // scale inf
        "q1 id=1 bench= tech=dac",             // empty bench
    };
    for (const char *payload : bad) {
        JobRequest rq;
        std::string err;
        EXPECT_FALSE(decodeRequest(payload, &rq, &err)) << payload;
        EXPECT_FALSE(err.empty()) << payload;
    }
}

TEST(ServiceCodec, ResponseRoundTrip)
{
    JobResponse rs;
    rs.id = 77;
    rs.ok = true;
    rs.cached = true;
    rs.attempts = 3;
    rs.retryable = false;
    rs.errorJson = "{\"kind\":\"crash\"}";
    rs.outcome = directRun(smallJob());
    JobResponse back;
    ASSERT_TRUE(decodeResponse(encodeResponse(rs), &back));
    EXPECT_EQ(back.id, rs.id);
    EXPECT_TRUE(back.ok);
    EXPECT_TRUE(back.cached);
    EXPECT_EQ(back.attempts, 3);
    EXPECT_FALSE(back.retryable);
    EXPECT_EQ(back.errorJson, rs.errorJson);
    EXPECT_EQ(encodeOutcome(back.outcome), encodeOutcome(rs.outcome));
}

TEST(ServiceCodec, RequestKindRoundTrip)
{
    JobRequest rq = smallJob();
    rq.kind = JobKind::Predict;
    JobRequest back;
    std::string err;
    ASSERT_TRUE(decodeRequest(encodeRequest(rq), &back, &err)) << err;
    EXPECT_EQ(back.kind, JobKind::Predict);

    // A request without the key decodes as a plain run (pre-kind
    // journal entries stay readable); an unknown kind is rejected.
    JobRequest old;
    ASSERT_TRUE(decodeRequest(
        "q1 id=1 bench=BS tech=DAC scale=3ff0000000000000 faults=", &old,
        &err))
        << err;
    EXPECT_EQ(old.kind, JobKind::Run);
    EXPECT_FALSE(decodeRequest(
        "q1 id=1 kind=guess bench=BS tech=DAC scale=3ff0000000000000",
        &old, &err));
}

TEST(ServiceCodec, ResponseEstimateFlagRoundTrip)
{
    JobResponse rs;
    rs.id = 9;
    rs.ok = true;
    rs.estimate = true;
    rs.outcome = directRun(smallJob());
    JobResponse back;
    ASSERT_TRUE(decodeResponse(encodeResponse(rs), &back));
    EXPECT_TRUE(back.estimate);
    rs.estimate = false;
    ASSERT_TRUE(decodeResponse(encodeResponse(rs), &back));
    EXPECT_FALSE(back.estimate);
}

TEST(ServiceCodec, ResponseRejectsGarbage)
{
    JobResponse rs;
    EXPECT_FALSE(decodeResponse("", &rs));
    EXPECT_FALSE(decodeResponse("p1 id=1 ok=1", &rs)); // no outcome
    EXPECT_FALSE(decodeResponse("p2 id=1", &rs));      // wrong tag
    EXPECT_FALSE(decodeResponse("p1 id=1 o=garbage", &rs));
}

// ----- chaos spec ---------------------------------------------------------

TEST(ServiceChaos, ParsesFullSpec)
{
    ChaosSpec c;
    std::string err;
    ASSERT_TRUE(
        ChaosSpec::parse("crash=0.2,timeout=0.05,seed=7", &c, &err));
    EXPECT_DOUBLE_EQ(c.crash, 0.2);
    EXPECT_DOUBLE_EQ(c.timeout, 0.05);
    EXPECT_EQ(c.seed, 7u);
    EXPECT_TRUE(c.enabled());
}

TEST(ServiceChaos, RejectsMalformedSpecs)
{
    const char *bad[] = {"crash", "crash=2", "crash=-1", "crash=x",
                         "seed=x", "flood=0.5", "crash=0.7,timeout=0.7"};
    for (const char *spec : bad) {
        ChaosSpec c;
        std::string err;
        EXPECT_FALSE(ChaosSpec::parse(spec, &c, &err)) << spec;
        EXPECT_FALSE(err.empty()) << spec;
    }
}

// ----- result cache -------------------------------------------------------

TEST(ServiceCache, StoreLookupRoundTrip)
{
    TempDir tmp;
    ResultCache cache((tmp.path / "cache").string());
    const RunOutcome out = directRun(smallJob());
    Provenance prov;
    prov.bench = "BS";
    prov.tech = "dac";
    prov.configFp = 0x1234;
    prov.kernelFp = 0x5678;
    prov.attempts = 2;
    prov.producer = "test";
    cache.store("k1", out, prov);

    RunOutcome got;
    Provenance gotProv;
    bool quarantined = true;
    ASSERT_TRUE(cache.lookup("k1", &got, &gotProv, &quarantined));
    EXPECT_FALSE(quarantined);
    EXPECT_EQ(encodeOutcome(got), encodeOutcome(out));
    EXPECT_EQ(gotProv.bench, "BS");
    EXPECT_EQ(gotProv.tech, "dac");
    EXPECT_EQ(gotProv.configFp, 0x1234u);
    EXPECT_EQ(gotProv.kernelFp, 0x5678u);
    EXPECT_EQ(gotProv.attempts, 2);
    EXPECT_EQ(gotProv.producer, "test");
    EXPECT_EQ(cache.quarantined(), 0u);
}

TEST(ServiceCache, MissOnUnknownKey)
{
    TempDir tmp;
    ResultCache cache((tmp.path / "cache").string());
    RunOutcome got;
    EXPECT_FALSE(cache.lookup("nope", &got));
    EXPECT_EQ(cache.quarantined(), 0u);
}

TEST(ServiceCache, CorruptEntryQuarantinedAndRecomputable)
{
    TempDir tmp;
    ResultCache cache((tmp.path / "cache").string());
    const RunOutcome out = directRun(smallJob());
    cache.store("k1", out, Provenance{});

    // Flip one byte inside the entry: the CRC must catch it.
    std::string entry = readFile(cache.entryPath("k1"));
    entry[entry.size() / 2] ^= 0x01;
    writeFile(cache.entryPath("k1"), entry);

    RunOutcome got;
    bool quarantined = false;
    EXPECT_FALSE(cache.lookup("k1", &got, nullptr, &quarantined));
    EXPECT_TRUE(quarantined);
    EXPECT_EQ(cache.quarantined(), 1u);
    EXPECT_FALSE(fs::exists(cache.entryPath("k1")));
    EXPECT_TRUE(fs::exists(cache.entryPath("k1") + ".quarantined"));

    // Degradation, not data loss: storing again serves verified hits.
    cache.store("k1", out, Provenance{});
    ASSERT_TRUE(cache.lookup("k1", &got));
    EXPECT_EQ(encodeOutcome(got), encodeOutcome(out));
}

TEST(ServiceCache, TruncatedEntryQuarantined)
{
    TempDir tmp;
    ResultCache cache((tmp.path / "cache").string());
    cache.store("k1", directRun(smallJob()), Provenance{});
    const std::string entry = readFile(cache.entryPath("k1"));
    writeFile(cache.entryPath("k1"), entry.substr(0, entry.size() / 3));
    RunOutcome got;
    EXPECT_FALSE(cache.lookup("k1", &got));
    EXPECT_EQ(cache.quarantined(), 1u);
}

// ----- durable queue ------------------------------------------------------

TEST(ServiceQueue, PendingTracksSubmitAndComplete)
{
    TempDir tmp;
    DurableQueue q((tmp.path / "queue.journal").string());
    q.submit("a", "req-a");
    q.submit("b", "req-b");
    q.complete("a");
    const auto pending = q.pending();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].first, "b");
    EXPECT_EQ(pending[0].second, "req-b");
}

TEST(ServiceQueue, BacklogSurvivesReopen)
{
    TempDir tmp;
    const std::string path = (tmp.path / "queue.journal").string();
    {
        DurableQueue q(path);
        q.submit("a", "req-a");
        q.submit("b", "req-b");
        q.submit("c", "req-c");
        q.complete("b");
        // No clean shutdown: the journal on disk is the only state.
    }
    DurableQueue q(path);
    const auto pending = q.pending();
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0].first, "a");
    EXPECT_EQ(pending[1].first, "c");
}

TEST(ServiceQueue, TornTailDoesNotPoisonBacklog)
{
    TempDir tmp;
    const std::string path = (tmp.path / "queue.journal").string();
    {
        DurableQueue q(path);
        q.submit("a", "req-a");
    }
    // Simulate a kill mid-append: partial bytes of a new record.
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "Q1 12ab";
    }
    DurableQueue q(path);
    const auto pending = q.pending();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].first, "a");
    q.submit("b", "req-b"); // journal still writable after recovery
    EXPECT_EQ(q.pending().size(), 2u);
}

// ----- fork isolation (shared with the fuzz campaign) ---------------------

TEST(Isolation, CleanChildDeliversOutput)
{
    IsolationOptions iso;
    iso.timeoutMs = 10000;
    const ChildResult r = runForkIsolated(
        [](int fd) {
            writeAll(fd, "verdict bytes");
            std::_Exit(0);
        },
        iso);
    EXPECT_EQ(r.outcome, ChildOutcome::Finished);
    EXPECT_TRUE(r.cleanExit());
    EXPECT_EQ(r.output, "verdict bytes");
}

TEST(Isolation, CrashingChildIsClassified)
{
    IsolationOptions iso;
    const ChildResult r =
        runForkIsolated([](int) { std::_Exit(86); }, iso);
    EXPECT_EQ(r.outcome, ChildOutcome::Finished);
    EXPECT_FALSE(r.cleanExit());
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitStatus, 86);
    EXPECT_EQ(r.exitDetail(), "child exited with status 86");
}

TEST(Isolation, WatchdogKillsHungChild)
{
    IsolationOptions iso;
    iso.timeoutMs = 200;
    iso.subject = "job";
    const ChildResult r = runForkIsolated(
        [](int) {
            for (;;)
                ::poll(nullptr, 0, 1000);
        },
        iso);
    EXPECT_EQ(r.outcome, ChildOutcome::Timeout);
    EXPECT_EQ(watchdogDetail(iso), "watchdog killed the job after 200 ms");
}

TEST(Isolation, RetryWithBackoffCountsAttempts)
{
    RetryPolicy policy;
    policy.maxRetries = 3;
    policy.baseDelayMs = 1;
    int calls = 0;
    EXPECT_EQ(retryWithBackoff(policy, [&] { return ++calls == 3; }), 3);
    EXPECT_EQ(calls, 3);
    calls = 0;
    EXPECT_EQ(retryWithBackoff(policy, [&] {
                  ++calls;
                  return false;
              }),
              4); // 1 attempt + 3 retries, all failing
    EXPECT_EQ(calls, 4);
}

// ----- daemon pipeline (in-process, no socket) ----------------------------

TEST(ServiceDaemon, ComputesCachesAndServesHits)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobRequest rq = smallJob();
    const JobResponse first = daemon.handle(rq);
    ASSERT_TRUE(first.ok) << first.errorJson;
    EXPECT_FALSE(first.cached);
    EXPECT_EQ(first.attempts, 1);
    EXPECT_EQ(encodeOutcome(first.outcome),
              encodeOutcome(directRun(rq)));

    const JobResponse second = daemon.handle(rq);
    ASSERT_TRUE(second.ok);
    EXPECT_TRUE(second.cached);
    EXPECT_EQ(encodeOutcome(second.outcome),
              encodeOutcome(first.outcome));
    EXPECT_EQ(daemon.counters().sims.load(), 1u);
    EXPECT_EQ(daemon.counters().cacheHits.load(), 1u);
}

TEST(ServiceDaemon, CacheSurvivesDaemonRestart)
{
    TempDir tmp;
    const JobRequest rq = smallJob(Technique::Dac);
    std::string firstEncoded;
    {
        Daemon daemon(poolOnlyOptions(tmp));
        std::string err;
        ASSERT_TRUE(daemon.start(&err)) << err;
        const JobResponse rs = daemon.handle(rq);
        ASSERT_TRUE(rs.ok);
        firstEncoded = encodeOutcome(rs.outcome);
    }
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    const JobResponse rs = daemon.handle(rq);
    ASSERT_TRUE(rs.ok);
    EXPECT_TRUE(rs.cached);
    EXPECT_EQ(encodeOutcome(rs.outcome), firstEncoded);
    EXPECT_EQ(daemon.counters().sims.load(), 0u);
}

TEST(ServiceDaemon, ConcurrentIdenticalJobsShareOneSimulation)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobRequest rq = smallJob(Technique::Cae);
    JobResponse a, b;
    std::thread ta([&] { a = daemon.handle(rq); });
    std::thread tb([&] { b = daemon.handle(rq); });
    ta.join();
    tb.join();
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(encodeOutcome(a.outcome), encodeOutcome(b.outcome));
    // The second submission either joined the in-flight job or hit the
    // fresh cache entry; it never re-simulated.
    EXPECT_EQ(daemon.counters().sims.load(), 1u);
    EXPECT_EQ(daemon.counters().dedup.load() +
                  daemon.counters().cacheHits.load(),
              1u);
}

TEST(ServiceDaemon, ChaosCrashesAndTimeoutsAreRetriedToSuccess)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.maxRetries = 12;
    opt.timeoutMs = 20000;
    std::string cerr2;
    ASSERT_TRUE(
        ChaosSpec::parse("crash=0.4,timeout=0.2,seed=11", &opt.chaos,
                         &cerr2));
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobRequest rq = smallJob();
    const JobResponse rs = daemon.handle(rq);
    ASSERT_TRUE(rs.ok) << rs.errorJson;
    // The injected failures delayed the result but never changed it.
    EXPECT_EQ(encodeOutcome(rs.outcome), encodeOutcome(directRun(rq)));
    EXPECT_EQ(daemon.counters().crashes.load() +
                  daemon.counters().timeouts.load(),
              static_cast<std::uint64_t>(rs.attempts - 1));
}

TEST(ServiceDaemon, RepeatedCrasherIsBlacklisted)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.maxRetries = 1;
    opt.crashLimit = 2;
    std::string cerr2;
    ASSERT_TRUE(ChaosSpec::parse("crash=1.0,seed=1", &opt.chaos, &cerr2));
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobRequest rq = smallJob();
    for (int i = 0; i < 2; ++i) {
        const JobResponse rs = daemon.handle(rq);
        EXPECT_FALSE(rs.ok);
        EXPECT_TRUE(rs.retryable);
        EXPECT_NE(rs.errorJson.find("\"kind\":\"crash\""),
                  std::string::npos);
    }
    // The crash budget is spent: the daemon serves the structured
    // error without burning another worker.
    const std::uint64_t simsBefore = daemon.counters().crashes.load();
    const JobResponse rs = daemon.handle(rq);
    EXPECT_FALSE(rs.ok);
    EXPECT_FALSE(rs.retryable);
    EXPECT_EQ(daemon.counters().blacklisted.load(), 1u);
    EXPECT_EQ(daemon.counters().crashes.load(), simsBefore);
}

TEST(ServiceDaemon, UnknownBenchmarkIsStructuredError)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    JobRequest rq = smallJob();
    rq.bench = "NOPE";
    const JobResponse rs = daemon.handle(rq);
    EXPECT_FALSE(rs.ok);
    EXPECT_FALSE(rs.retryable);
    EXPECT_NE(rs.errorJson.find("\"kind\":\"bad-request\""),
              std::string::npos);
    EXPECT_EQ(daemon.counters().badRequests.load(), 1u);
    // The daemon survives and still serves good jobs.
    EXPECT_TRUE(daemon.handle(smallJob()).ok);
}

TEST(ServiceDaemon, MalformedFaultSpecIsStructuredError)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    JobRequest rq = smallJob();
    rq.faultSpec = "bogus@@spec";
    const JobResponse rs = daemon.handle(rq);
    EXPECT_FALSE(rs.ok);
    EXPECT_NE(rs.errorJson.find("\"kind\":\"bad-request\""),
              std::string::npos);
}

TEST(ServiceDaemon, OutcomeWithSimulationErrorIsStillCached)
{
    // A run that fails *inside* the simulator (here: an unrecoverable
    // injected fault under baseline-degradation) is a valid, complete
    // result — exactly what a direct runWorkload() returns — and must
    // be cached and served like any other.
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    JobRequest rq = smallJob(Technique::Dac);
    rq.faultSpec = "invalidate@1000";
    const JobResponse first = daemon.handle(rq);
    ASSERT_TRUE(first.ok) << first.errorJson;
    EXPECT_TRUE(first.outcome.fellBack);
    const JobResponse second = daemon.handle(rq);
    ASSERT_TRUE(second.ok);
    EXPECT_TRUE(second.cached);
    EXPECT_EQ(encodeOutcome(second.outcome),
              encodeOutcome(first.outcome));
}

TEST(ServiceDaemon, QuarantinesCorruptCacheEntryAndRecomputes)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobRequest rq = smallJob();
    const JobResponse first = daemon.handle(rq);
    ASSERT_TRUE(first.ok);

    // Corrupt the entry on disk behind the daemon's back.
    const std::string entryPath = (tmp.path / "state" / "cache" /
                                   (daemon.cacheKey(rq) + ".result"))
                                      .string();
    ASSERT_TRUE(fs::exists(entryPath));
    std::string entry = readFile(entryPath);
    entry[entry.size() / 2] ^= 0x01;
    writeFile(entryPath, entry);

    const JobResponse second = daemon.handle(rq);
    ASSERT_TRUE(second.ok);
    EXPECT_FALSE(second.cached); // recomputed, not served corrupt
    EXPECT_EQ(encodeOutcome(second.outcome),
              encodeOutcome(first.outcome));
    EXPECT_EQ(daemon.counters().sims.load(), 2u);
    EXPECT_NE(daemon.summaryLine().find("quarantined=1"),
              std::string::npos);
    EXPECT_TRUE(fs::exists(entryPath + ".quarantined"));

    // And the recomputed entry serves verified hits again.
    const JobResponse third = daemon.handle(rq);
    EXPECT_TRUE(third.cached);
}

TEST(ServiceDaemon, ResumesBacklogFromDurableQueue)
{
    TempDir tmp;
    const std::string dir = (tmp.path / "state").string();
    fs::create_directories(dir);
    const JobRequest rq = smallJob(Technique::Mta);

    // A dead daemon's journal: the job was submitted, never completed.
    std::string key;
    {
        DaemonOptions probe = poolOnlyOptions(tmp);
        Daemon d(probe);
        std::string err;
        ASSERT_TRUE(d.start(&err)) << err;
        key = d.cacheKey(rq);
    }
    {
        DurableQueue q(dir + "/queue.journal");
        q.submit(key, encodeRequest(rq));
    }

    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    EXPECT_EQ(daemon.counters().resumed.load(), 1u);

    // The backlog job runs without any client attached; wait for its
    // result to land in the cache, then a resubmission is a pure hit.
    const std::string entry =
        (fs::path(dir) / "cache" / (key + ".result")).string();
    for (int i = 0; i < 600 && !fs::exists(entry); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(fs::exists(entry));
    const JobResponse rs = daemon.handle(rq);
    ASSERT_TRUE(rs.ok);
    EXPECT_TRUE(rs.cached);
    EXPECT_EQ(encodeOutcome(rs.outcome),
              encodeOutcome(directRun(rq)));

    // The queue is drained: a third daemon resumes nothing.
    daemon.stop();
    Daemon fresh(poolOnlyOptions(tmp));
    ASSERT_TRUE(fresh.start(&err)) << err;
    EXPECT_EQ(fresh.counters().resumed.load(), 0u);
}

// ----- socket end to end --------------------------------------------------

TEST(ServiceSocket, EndToEndOverUnixSocket)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    {
        ServiceClient cli(opt.socketPath);
        const JobRequest rq = smallJob();
        JobResponse rs;
        std::string cerr2;
        ASSERT_TRUE(cli.call(rq, &rs, &cerr2)) << cerr2;
        ASSERT_TRUE(rs.ok) << rs.errorJson;
        EXPECT_EQ(rs.id, rq.id);
        EXPECT_EQ(encodeOutcome(rs.outcome),
                  encodeOutcome(directRun(rq)));

        // Same connection, second call: served from the cache.
        JobResponse again;
        ASSERT_TRUE(cli.call(rq, &again, &cerr2)) << cerr2;
        EXPECT_TRUE(again.cached);
    }
    daemon.requestStop();
    server.join();
    EXPECT_EQ(daemon.counters().sims.load(), 1u);
    EXPECT_EQ(daemon.counters().cacheHits.load(), 1u);
}

TEST(ServiceSocket, PredictAnsweredStaticallyOnMissAndFromCacheOnHit)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    {
        ServiceClient cli(opt.socketPath);
        JobRequest rq = smallJob(Technique::Dac);
        rq.kind = JobKind::Predict;
        std::string cerr2;

        // Cold cache: the static predictor answers instantly, without
        // simulating, and the estimate is never cached.
        JobResponse est;
        ASSERT_TRUE(cli.call(rq, &est, &cerr2)) << cerr2;
        ASSERT_TRUE(est.ok) << est.errorJson;
        EXPECT_TRUE(est.estimate);
        EXPECT_FALSE(est.cached);
        EXPECT_EQ(daemon.counters().sims.load(), 0u);
        EXPECT_EQ(daemon.counters().estimates.load(), 1u);

        // The estimate is exactly the static model's.
        GpuMemory gmem;
        PreparedWorkload prep =
            findWorkload(rq.bench).prepare(gmem, rq.scale());
        const RunOptions defaults;
        PredictReport rep =
            predictKernel(prep.kernel, predictLaunches(prep),
                          defaults.gpu, defaults.dac);
        EXPECT_EQ(est.outcome.stats.cycles, rep.dac.estimateCycles);
        EXPECT_EQ(est.outcome.anyDecoupled, rep.predictedAnyDecoupled);

        // A later run request still simulates (the estimate did not
        // poison the cache) ...
        JobRequest run = smallJob(Technique::Dac);
        JobResponse real;
        ASSERT_TRUE(cli.call(run, &real, &cerr2)) << cerr2;
        ASSERT_TRUE(real.ok) << real.errorJson;
        EXPECT_FALSE(real.estimate);
        EXPECT_EQ(daemon.counters().sims.load(), 1u);

        // ... and a predict request after it is served the real cached
        // outcome, not an estimate.
        JobResponse hit;
        ASSERT_TRUE(cli.call(rq, &hit, &cerr2)) << cerr2;
        ASSERT_TRUE(hit.ok);
        EXPECT_TRUE(hit.cached);
        EXPECT_FALSE(hit.estimate);
        EXPECT_EQ(encodeOutcome(hit.outcome),
                  encodeOutcome(real.outcome));
    }
    daemon.requestStop();
    server.join();
}

TEST(ServiceSocket, GarbageBytesGetStructuredErrorNotCrash)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    // Hand-rolled raw connection speaking garbage.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt.socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    writeAll(fd, "this is not a frame and never will be");
    std::string buf;
    ASSERT_TRUE(readWithDeadline(fd, 10000, &buf));
    ::close(fd);
    std::string payload, detail;
    ASSERT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    JobResponse rs;
    ASSERT_TRUE(decodeResponse(payload, &rs));
    EXPECT_FALSE(rs.ok);
    EXPECT_NE(rs.errorJson.find("bad-frame"), std::string::npos);
    EXPECT_EQ(daemon.counters().badRequests.load(), 1u);

    // The daemon shrugged it off: a well-formed client still works.
    ServiceClient cli(opt.socketPath);
    JobResponse good;
    std::string cerr2;
    ASSERT_TRUE(cli.call(smallJob(), &good, &cerr2)) << cerr2;
    EXPECT_TRUE(good.ok);

    daemon.requestStop();
    server.join();
}
