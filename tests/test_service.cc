/**
 * @file
 * Simulation-service tests (DESIGN.md §14, §16): the framed codec —
 * both DSF1 and the typed DSF2 schema — under malformed input
 * (including the corruption corpus in tests/corpus/service/), the
 * CRC-verified result cache with quarantine-on-corruption, the durable
 * queue's kill/restart resume, the shared fork-isolation primitives,
 * the stride scheduler's weighted fairness and admission bound, the
 * rendezvous shard router's stability and failover, progress
 * streaming, and the daemon's full request pipeline — caching,
 * in-flight dedup, chaos-injected crash/timeout retry, crash
 * blacklisting, backlog resume, admission control, and the socket
 * loop end to end (DSF2 clients, recorded DSF1 clients, and garbage).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "analysis/predict.h"
#include "harness/isolation.h"
#include "harness/journal.h"
#include "harness/runner.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/codec.h"
#include "service/daemon.h"
#include "service/fair.h"
#include "service/key.h"
#include "service/queue.h"
#include "service/router.h"
#include "workloads/workload.h"

namespace fs = std::filesystem;
using namespace dacsim;
using namespace dacsim::service;

namespace
{

/** Per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = std::string("dacsim_svc_") +
                           info->test_suite_name() + "_" + info->name();
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        path = fs::temp_directory_path() / name;
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

/** A small but real job every daemon test uses. */
JobSpec
smallJob(Technique tech = Technique::Baseline)
{
    JobSpec spec;
    spec.id = 1;
    spec.bench = "BS";
    spec.tech = tech;
    spec.setScale(0.05);
    return spec;
}

RunOutcome
directRun(const JobSpec &spec)
{
    RunOptions opt;
    opt.tech = spec.tech;
    opt.scale = spec.scale();
    if (!spec.faultSpec.empty())
        opt.faults = FaultPlan::parse(spec.faultSpec);
    return runWorkload(spec.bench, opt);
}

DaemonOptions
poolOnlyOptions(const TempDir &tmp)
{
    DaemonOptions opt;
    opt.dir = (tmp.path / "state").string();
    opt.workers = 2;
    opt.timeoutMs = 60000;
    return opt;
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const fs::path &p, const std::string &s)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << s;
}

/**
 * Block until @p key shows up in the daemon's durable queue journal
 * (written immediately after a job is admitted) — the deterministic
 * "this job now holds its client's admission slot" signal, unlike a
 * sleep, which a sanitized build can outrun.
 */
bool
waitForJournalKey(const TempDir &tmp, const std::string &key)
{
    const fs::path journal = tmp.path / "state" / "queue.journal";
    for (int i = 0; i < 2000; ++i) {
        if (readFile(journal).find(key) != std::string::npos)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

/** Raw unix-socket connection (for protocol-level tests). */
int
rawConnect(const std::string &socketPath)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr),
        0);
    return fd;
}

} // namespace

// ----- frame codec --------------------------------------------------------

TEST(ServiceCodec, FrameRoundTrip)
{
    std::string buf = frameMessage("hello service");
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    EXPECT_EQ(payload, "hello service");
    EXPECT_TRUE(buf.empty());
}

TEST(ServiceCodec, FrameReportsProtocolVersion)
{
    std::string buf = frameMessage("old", frameMagic) +
                      frameMessage("new", frameMagicV2);
    std::string payload, detail;
    int version = 0;
    EXPECT_EQ(popFrame(&buf, &payload, &detail, &version),
              FrameStatus::Ok);
    EXPECT_EQ(version, 1);
    EXPECT_EQ(popFrame(&buf, &payload, &detail, &version),
              FrameStatus::Ok);
    EXPECT_EQ(version, 2);
    EXPECT_EQ(payload, "new");
}

TEST(ServiceCodec, FrameDecodesIncrementally)
{
    const std::string wire = frameMessage("drip-fed payload");
    std::string buf, payload, detail;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        buf.push_back(wire[i]);
        EXPECT_EQ(popFrame(&buf, &payload, &detail),
                  FrameStatus::NeedMore);
    }
    buf.push_back(wire.back());
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    EXPECT_EQ(payload, "drip-fed payload");
}

TEST(ServiceCodec, FrameBackToBackMessages)
{
    std::string buf = frameMessage("first") + frameMessage("second");
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    EXPECT_EQ(payload, "first");
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    EXPECT_EQ(payload, "second");
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::NeedMore);
}

TEST(ServiceCodec, FrameRejectsBadMagic)
{
    std::string buf = "XYZW" + frameMessage("x").substr(4);
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::BadMagic);
    EXPECT_NE(detail.find("out of sync"), std::string::npos);
}

TEST(ServiceCodec, FrameRejectsOversizedLength)
{
    // A length field past the ceiling must be reported as corruption,
    // not used as an allocation size.
    std::string buf = frameMessage("x");
    buf[4] = '\xff';
    buf[5] = '\xff';
    buf[6] = '\xff';
    buf[7] = '\xff';
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Oversized);
    EXPECT_NE(detail.find("oversized"), std::string::npos);
}

TEST(ServiceCodec, FrameRejectsBadCrc)
{
    std::string buf = frameMessage("checksummed");
    buf[buf.size() - 1] ^= 0x20; // corrupt one payload byte
    std::string payload, detail;
    EXPECT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::BadCrc);
    EXPECT_NE(detail.find("CRC"), std::string::npos);
}

TEST(ServiceCodec, MalformedCorpusNeverCrashes)
{
    const fs::path dir = fs::path(DACSIM_CORPUS_DIR) / "service";
    ASSERT_TRUE(fs::exists(dir));
    int files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".bin")
            continue;
        // v1-*.bin are the *valid* recorded DSF1 corpus (exercised by
        // ServiceSocket.RecordedV1CorpusRoundTripsThroughDaemon); the
        // rest are corruption fixtures.
        if (entry.path().filename().string().rfind("v1-", 0) == 0)
            continue;
        ++files;
        std::string buf = readFile(entry.path());
        std::string payload, detail;
        const FrameStatus st = popFrame(&buf, &payload, &detail);
        // Every corpus file is corrupt or incomplete: the decoder must
        // return a structured status, never Ok — and never crash.
        EXPECT_NE(st, FrameStatus::Ok) << entry.path();
        if (st != FrameStatus::NeedMore) {
            EXPECT_FALSE(detail.empty()) << entry.path();
        }
    }
    EXPECT_GE(files, 5);
}

// ----- hello (protocol negotiation) ---------------------------------------

TEST(ServiceCodec, HelloRoundTrip)
{
    int proto = 0;
    ASSERT_TRUE(decodeHello(encodeHello(), &proto));
    EXPECT_EQ(proto, 2);
    // A bare hello defaults to the current generation; unknown keys
    // are ignored so future hellos stay decodable.
    ASSERT_TRUE(decodeHello("h2", &proto));
    EXPECT_EQ(proto, 2);
    ASSERT_TRUE(decodeHello("h2 proto=3 future=maybe", &proto));
    EXPECT_EQ(proto, 3);
    EXPECT_FALSE(decodeHello("q1 id=1", &proto));
    EXPECT_FALSE(decodeHello("h2 bogus", &proto));
    EXPECT_FALSE(decodeHello("h2 proto=x", &proto));
}

// ----- job-spec codec -----------------------------------------------------

TEST(ServiceCodec, SpecRoundTripIsExact)
{
    JobSpec spec;
    spec.id = 0xdeadbeefcafeull;
    spec.bench = "FFT";
    spec.tech = Technique::Dac;
    spec.setScale(0.3); // no exact binary representation: bits must survive
    spec.faultSpec = "seed=42;mshr@0-200000:30;jitter@0:400";
    spec.client = "sweep worker 7"; // spaces must survive escaping
    spec.weight = 16;
    spec.progress = true;
    JobSpec back;
    std::string err;
    ASSERT_TRUE(decodeSpec(encodeSpec(spec), &back, &err)) << err;
    EXPECT_EQ(back.id, spec.id);
    EXPECT_EQ(back.bench, spec.bench);
    EXPECT_EQ(back.tech, spec.tech);
    EXPECT_EQ(back.scaleBits, spec.scaleBits);
    EXPECT_EQ(back.scale(), 0.3);
    EXPECT_EQ(back.faultSpec, spec.faultSpec);
    EXPECT_EQ(back.client, spec.client);
    EXPECT_EQ(back.weight, 16);
    EXPECT_TRUE(back.progress);
}

TEST(ServiceCodec, SpecV1EncodingOmitsAdmissionFields)
{
    JobSpec spec = smallJob(Technique::Dac);
    spec.client = "ignored";
    spec.weight = 8;
    spec.progress = true;
    const std::string v1 = encodeSpec(spec, 1);
    EXPECT_EQ(payloadTag(v1), "q1");
    EXPECT_EQ(v1.find("client="), std::string::npos);
    EXPECT_EQ(v1.find("weight="), std::string::npos);
    EXPECT_EQ(v1.find("prog="), std::string::npos);

    JobSpec back;
    std::string err;
    ASSERT_TRUE(decodeSpec(v1, &back, &err)) << err;
    // The admission identity and streaming flag degrade to their
    // defaults — and the simulation-relevant fields survive exactly.
    EXPECT_EQ(back.client, "");
    EXPECT_EQ(back.weight, 1);
    EXPECT_FALSE(back.progress);
    EXPECT_EQ(back.bench, spec.bench);
    EXPECT_EQ(back.tech, spec.tech);
    EXPECT_EQ(back.scaleBits, spec.scaleBits);
}

TEST(ServiceCodec, SpecRejectsMalformedPayloads)
{
    const char *bad[] = {
        "",                                    // empty
        "zz id=1 bench=BS tech=DAC",           // unknown tag
        "q1 id=1 tech=DAC scale=3ff0000000000000", // no bench
        "q1 id=1 bench=BS scale=3ff0000000000000", // no technique
        "q1 id=1 bench=BS tech=warp-drive",    // unknown technique
        "q1 id=1 bench=BS tech=DAC bogus",     // field without '='
        "q1 id=1 bench=BS tech=DAC color=red", // unknown key
        "q1 id=xyz bench=BS tech=DAC",         // non-numeric id
        "q1 id=1 bench=BS tech=DAC scale=zz",  // non-numeric scale
        "q1 id=1 bench=BS tech=DAC scale=0",   // scale == 0
        "q1 id=1 bench=BS tech=DAC scale=7ff0000000000000", // scale inf
        "q1 id=1 bench= tech=DAC",             // empty bench
        "q1 id=1 bench=BS tech=DAC client=x",  // v2 key in a v1 payload
        "q1 id=1 bench=BS tech=DAC weight=2",  // v2 key in a v1 payload
        "q1 id=1 bench=BS tech=DAC prog=1",    // v2 key in a v1 payload
        "j2 id=1 bench=BS tech=DAC weight=0",  // weight below range
        "j2 id=1 bench=BS tech=DAC weight=4096", // weight above range
        "j2 id=1 bench=BS tech=DAC weight=x",  // non-numeric weight
        "j2 id=1 bench=BS tech=DAC prog=2",    // non-boolean flag
        "j2 id=1 bench=BS tech=DAC kind=guess", // unknown kind
    };
    for (const char *payload : bad) {
        JobSpec spec;
        std::string err;
        EXPECT_FALSE(decodeSpec(payload, &spec, &err)) << payload;
        EXPECT_FALSE(err.empty()) << payload;
    }
}

TEST(ServiceCodec, SpecKindRoundTrip)
{
    JobSpec spec = smallJob();
    spec.kind = JobKind::Predict;
    JobSpec back;
    std::string err;
    ASSERT_TRUE(decodeSpec(encodeSpec(spec), &back, &err)) << err;
    EXPECT_EQ(back.kind, JobKind::Predict);

    // A payload without the key decodes as a plain run (pre-kind
    // journal entries stay readable).
    JobSpec old;
    ASSERT_TRUE(decodeSpec(
        "q1 id=1 bench=BS tech=DAC scale=3ff0000000000000 faults=", &old,
        &err))
        << err;
    EXPECT_EQ(old.kind, JobKind::Run);
}

// ----- job-result codec ---------------------------------------------------

TEST(ServiceCodec, ResultRoundTrip)
{
    JobResult rs;
    rs.id = 77;
    rs.status = JobStatus::Ok;
    rs.source = ResultSource::Cached;
    rs.attempts = 3;
    rs.errorJson = "{\"kind\":\"crash\"}";
    rs.outcome = directRun(smallJob());
    JobResult back;
    ASSERT_TRUE(decodeResult(encodeResult(rs), &back));
    EXPECT_EQ(back.id, rs.id);
    EXPECT_EQ(back.status, JobStatus::Ok);
    EXPECT_EQ(back.source, ResultSource::Cached);
    EXPECT_EQ(back.attempts, 3);
    EXPECT_EQ(back.errorJson, rs.errorJson);
    EXPECT_EQ(encodeOutcome(back.outcome), encodeOutcome(rs.outcome));

    // Every status survives the typed encoding — including
    // Overloaded, which DSF1 cannot express.
    for (JobStatus st : {JobStatus::Ok, JobStatus::Failed,
                         JobStatus::Retryable, JobStatus::Overloaded}) {
        rs.status = st;
        ASSERT_TRUE(decodeResult(encodeResult(rs), &back));
        EXPECT_EQ(back.status, st);
    }
    for (ResultSource src :
         {ResultSource::Simulated, ResultSource::Cached,
          ResultSource::Predicted}) {
        rs.source = src;
        ASSERT_TRUE(decodeResult(encodeResult(rs), &back));
        EXPECT_EQ(back.source, src);
    }
}

TEST(ServiceCodec, ResultV1MappingProjectsStatusAndSource)
{
    JobResult rs;
    rs.id = 9;
    rs.status = JobStatus::Ok;
    rs.source = ResultSource::Predicted;
    rs.outcome = directRun(smallJob());

    JobResult back;
    ASSERT_TRUE(decodeResult(encodeResult(rs, 1), &back));
    EXPECT_EQ(payloadTag(encodeResult(rs, 1)), "p1");
    EXPECT_TRUE(back.ok());
    EXPECT_EQ(back.source, ResultSource::Predicted);

    rs.source = ResultSource::Cached;
    ASSERT_TRUE(decodeResult(encodeResult(rs, 1), &back));
    EXPECT_EQ(back.source, ResultSource::Cached);

    // Overloaded degrades to a generic retryable failure — all a DSF1
    // client can act on; the typed encoding keeps the distinction.
    rs.status = JobStatus::Overloaded;
    rs.source = ResultSource::Simulated;
    ASSERT_TRUE(decodeResult(encodeResult(rs, 1), &back));
    EXPECT_EQ(back.status, JobStatus::Retryable);
    EXPECT_TRUE(back.retryable());
}

TEST(ServiceCodec, ResultRejectsGarbage)
{
    JobResult rs;
    EXPECT_FALSE(decodeResult("", &rs));
    EXPECT_FALSE(decodeResult("p1 id=1 ok=1", &rs));  // no outcome
    EXPECT_FALSE(decodeResult("p2 id=1", &rs));       // wrong tag
    EXPECT_FALSE(decodeResult("p1 id=1 o=garbage", &rs));
    EXPECT_FALSE(decodeResult("r2 id=1 o=garbage", &rs));
    EXPECT_FALSE(decodeResult("r2 id=1 st=maybe", &rs)); // unknown status
    JobResult ok;
    ok.status = JobStatus::Ok;
    ok.outcome = directRun(smallJob());
    // A result missing its typed status is a different format, not a
    // guess: rejected.
    std::string noStatus = encodeResult(ok);
    const std::size_t stPos = noStatus.find(" st=ok");
    ASSERT_NE(stPos, std::string::npos);
    noStatus.erase(stPos, 6);
    EXPECT_FALSE(decodeResult(noStatus, &rs));
}

// ----- job-progress codec -------------------------------------------------

TEST(ServiceCodec, ProgressRoundTrip)
{
    JobProgress p;
    p.id = 31337;
    p.sample.cycle = 8192;
    p.sample.warpInsts = 123456;
    p.sample.loadRequests = 777;
    p.sample.l1Misses = 42;
    p.sample.deqStallCycles = 99;
    p.sample.activeWarps = 17;
    p.sample.atq = 3;
    p.sample.pwaq = 5;
    p.sample.pwpq = 7;
    p.sample.mshrLive = 11;
    p.stalls.idleSlots = 1000;
    for (std::size_t r = 0; r < p.stalls.reasons.size(); ++r)
        p.stalls.reasons[r] = r * 3 + 1;

    JobProgress back;
    ASSERT_TRUE(decodeProgress(encodeProgress(p), &back));
    EXPECT_EQ(back.id, p.id);
    EXPECT_EQ(back.sample, p.sample);
    EXPECT_EQ(back.stalls.idleSlots, p.stalls.idleSlots);
    EXPECT_EQ(back.stalls.reasons, p.stalls.reasons);
}

TEST(ServiceCodec, ProgressRejectsGarbage)
{
    JobProgress p;
    EXPECT_FALSE(decodeProgress("", &p));
    EXPECT_FALSE(decodeProgress("g2 id=1", &p));        // no cycle
    EXPECT_FALSE(decodeProgress("r2 id=1 cycle=1", &p)); // wrong tag
    EXPECT_FALSE(decodeProgress("g2 id=1 cycle=x", &p));
    EXPECT_FALSE(decodeProgress("g2 id=1 cycle=1 sr=1,2", &p)); // short
    EXPECT_FALSE(decodeProgress("g2 id=1 cycle=1 color=red", &p));
}

TEST(ServiceCodec, ChildOutcomeRoundTrip)
{
    const RunOutcome out = directRun(smallJob());
    RunOutcome back;
    ASSERT_TRUE(decodeChildOutcome(encodeChildOutcome(out), &back));
    EXPECT_EQ(encodeOutcome(back), encodeOutcome(out));
    EXPECT_FALSE(decodeChildOutcome("o3 nope", &back));
    EXPECT_FALSE(decodeChildOutcome("o2 garbage", &back));
}

// ----- chaos spec ---------------------------------------------------------

TEST(ServiceChaos, ParsesFullSpec)
{
    ChaosSpec c;
    std::string err;
    ASSERT_TRUE(
        ChaosSpec::parse("crash=0.2,timeout=0.05,seed=7", &c, &err));
    EXPECT_DOUBLE_EQ(c.crash, 0.2);
    EXPECT_DOUBLE_EQ(c.timeout, 0.05);
    EXPECT_EQ(c.seed, 7u);
    EXPECT_TRUE(c.enabled());
}

TEST(ServiceChaos, RejectsMalformedSpecs)
{
    const char *bad[] = {"crash", "crash=2", "crash=-1", "crash=x",
                         "seed=x", "flood=0.5", "crash=0.7,timeout=0.7"};
    for (const char *spec : bad) {
        ChaosSpec c;
        std::string err;
        EXPECT_FALSE(ChaosSpec::parse(spec, &c, &err)) << spec;
        EXPECT_FALSE(err.empty()) << spec;
    }
}

// ----- stride scheduler (fair worker pool) --------------------------------

TEST(ServiceFair, WeightedClientsDrainProportionally)
{
    StrideScheduler<int> sched;
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(sched.push("alpha", 4, i));
        ASSERT_TRUE(sched.push("bravo", 1, 100 + i));
    }
    int alphaPops = 0;
    for (int i = 0; i < 25; ++i) {
        int item = 0;
        std::string client;
        ASSERT_TRUE(sched.pop(&item, &client));
        sched.finished(client);
        if (client == "alpha")
            ++alphaPops;
    }
    // A weight-4 client owns 4/5 of the pops — 20 of 25, within the
    // one-pop rounding band of the stride interleave.
    EXPECT_GE(alphaPops, 18);
    EXPECT_LE(alphaPops, 22);
    EXPECT_EQ(sched.size(), 75u);
}

TEST(ServiceFair, DepthBoundRefusesPushUntilFinished)
{
    StrideScheduler<int> sched(2);
    EXPECT_TRUE(sched.push("c", 1, 1));
    EXPECT_TRUE(sched.push("c", 1, 2));
    EXPECT_FALSE(sched.push("c", 1, 3)); // queued == depth
    EXPECT_EQ(sched.depth("c"), 2u);

    int item = 0;
    std::string client;
    ASSERT_TRUE(sched.pop(&item, &client));
    // Running jobs still hold their depth slot: queued + running == 2.
    EXPECT_FALSE(sched.push("c", 1, 3));
    sched.finished("c");
    EXPECT_TRUE(sched.push("c", 1, 3));
    // The bound is per client, not global.
    EXPECT_TRUE(sched.push("d", 1, 4));
}

TEST(ServiceFair, LateJoinerStartsAtCurrentClockNotZero)
{
    StrideScheduler<int> sched;
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(sched.push("early", 1, i));
    int item = 0;
    std::string client;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(sched.pop(&item, &client));
        sched.finished(client);
    }
    // A client joining now has banked no credit: it alternates with
    // the incumbent instead of monopolizing the pool.
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(sched.push("late", 1, 100 + i));
    int latePops = 0;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(sched.pop(&item, &client));
        sched.finished(client);
        if (client == "late")
            ++latePops;
    }
    EXPECT_GE(latePops, 4);
    EXPECT_LE(latePops, 6);
}

// ----- content address + shard routing ------------------------------------

TEST(ServiceKey, CacheKeyIgnoresAdmissionIdentity)
{
    JobSpec a = smallJob(Technique::Dac);
    JobSpec b = a;
    b.id = 999;
    b.client = "someone else";
    b.weight = 64;
    b.progress = true;
    // Same job, different submitter: one cache entry, one simulation,
    // one shard.
    EXPECT_EQ(cacheKeyFor(a), cacheKeyFor(b));

    JobSpec c = a;
    c.tech = Technique::Mta;
    EXPECT_NE(cacheKeyFor(a), cacheKeyFor(c));
    JobSpec d = a;
    d.scaleBits += 1;
    EXPECT_NE(cacheKeyFor(a), cacheKeyFor(d));
    JobSpec e = a;
    e.faultSpec = "jitter@0:400";
    EXPECT_NE(cacheKeyFor(a), cacheKeyFor(e));
}

TEST(ServiceRouter, RendezvousRanksAreStableUnderShardAddition)
{
    const ShardRouter three({"/tmp/s1", "/tmp/s2", "/tmp/s3"});
    const ShardRouter four({"/tmp/s1", "/tmp/s2", "/tmp/s3", "/tmp/s4"});
    int moved = 0;
    const int keys = 200;
    for (int i = 0; i < keys; ++i) {
        const std::string key = "key-" + std::to_string(i);
        const auto r3 = three.rank(key);
        const auto r4 = four.rank(key);
        ASSERT_EQ(r3.size(), 3u);
        ASSERT_EQ(r4.size(), 4u);
        // Both ranks are permutations.
        std::vector<bool> seen(4, false);
        for (std::size_t s : r4) {
            ASSERT_LT(s, 4u);
            ASSERT_FALSE(seen[s]);
            seen[s] = true;
        }
        // Adding a shard only remaps the keys the new shard now owns;
        // every other key keeps its owner (no global reshuffle).
        if (r4[0] == 3)
            ++moved;
        else
            EXPECT_EQ(r4[0], r3[0]) << key;
    }
    // Roughly 1/4 of keys move to the new shard — and not all of them.
    EXPECT_GT(moved, 0);
    EXPECT_LT(moved, keys / 2);
}

// ----- result cache -------------------------------------------------------

TEST(ServiceCache, StoreLookupRoundTrip)
{
    TempDir tmp;
    ResultCache cache((tmp.path / "cache").string());
    const RunOutcome out = directRun(smallJob());
    Provenance prov;
    prov.bench = "BS";
    prov.tech = "dac";
    prov.configFp = 0x1234;
    prov.kernelFp = 0x5678;
    prov.attempts = 2;
    prov.producer = "test";
    cache.store("k1", out, prov);

    RunOutcome got;
    Provenance gotProv;
    bool quarantined = true;
    ASSERT_TRUE(cache.lookup("k1", &got, &gotProv, &quarantined));
    EXPECT_FALSE(quarantined);
    EXPECT_EQ(encodeOutcome(got), encodeOutcome(out));
    EXPECT_EQ(gotProv.bench, "BS");
    EXPECT_EQ(gotProv.tech, "dac");
    EXPECT_EQ(gotProv.configFp, 0x1234u);
    EXPECT_EQ(gotProv.kernelFp, 0x5678u);
    EXPECT_EQ(gotProv.attempts, 2);
    EXPECT_EQ(gotProv.producer, "test");
    EXPECT_EQ(cache.quarantined(), 0u);
}

TEST(ServiceCache, MissOnUnknownKey)
{
    TempDir tmp;
    ResultCache cache((tmp.path / "cache").string());
    RunOutcome got;
    EXPECT_FALSE(cache.lookup("nope", &got));
    EXPECT_EQ(cache.quarantined(), 0u);
}

TEST(ServiceCache, CorruptEntryQuarantinedAndRecomputable)
{
    TempDir tmp;
    ResultCache cache((tmp.path / "cache").string());
    const RunOutcome out = directRun(smallJob());
    cache.store("k1", out, Provenance{});

    // Flip one byte inside the entry: the CRC must catch it.
    std::string entry = readFile(cache.entryPath("k1"));
    entry[entry.size() / 2] ^= 0x01;
    writeFile(cache.entryPath("k1"), entry);

    RunOutcome got;
    bool quarantined = false;
    EXPECT_FALSE(cache.lookup("k1", &got, nullptr, &quarantined));
    EXPECT_TRUE(quarantined);
    EXPECT_EQ(cache.quarantined(), 1u);
    EXPECT_FALSE(fs::exists(cache.entryPath("k1")));
    EXPECT_TRUE(fs::exists(cache.entryPath("k1") + ".quarantined"));

    // Degradation, not data loss: storing again serves verified hits.
    cache.store("k1", out, Provenance{});
    ASSERT_TRUE(cache.lookup("k1", &got));
    EXPECT_EQ(encodeOutcome(got), encodeOutcome(out));
}

TEST(ServiceCache, TruncatedEntryQuarantined)
{
    TempDir tmp;
    ResultCache cache((tmp.path / "cache").string());
    cache.store("k1", directRun(smallJob()), Provenance{});
    const std::string entry = readFile(cache.entryPath("k1"));
    writeFile(cache.entryPath("k1"), entry.substr(0, entry.size() / 3));
    RunOutcome got;
    EXPECT_FALSE(cache.lookup("k1", &got));
    EXPECT_EQ(cache.quarantined(), 1u);
}

// ----- durable queue ------------------------------------------------------

TEST(ServiceQueue, PendingTracksSubmitAndComplete)
{
    TempDir tmp;
    DurableQueue q((tmp.path / "queue.journal").string());
    q.submit("a", "req-a");
    q.submit("b", "req-b");
    q.complete("a");
    const auto pending = q.pending();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].first, "b");
    EXPECT_EQ(pending[0].second, "req-b");
}

TEST(ServiceQueue, BacklogSurvivesReopen)
{
    TempDir tmp;
    const std::string path = (tmp.path / "queue.journal").string();
    {
        DurableQueue q(path);
        q.submit("a", "req-a");
        q.submit("b", "req-b");
        q.submit("c", "req-c");
        q.complete("b");
        // No clean shutdown: the journal on disk is the only state.
    }
    DurableQueue q(path);
    const auto pending = q.pending();
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0].first, "a");
    EXPECT_EQ(pending[1].first, "c");
}

TEST(ServiceQueue, TornTailDoesNotPoisonBacklog)
{
    TempDir tmp;
    const std::string path = (tmp.path / "queue.journal").string();
    {
        DurableQueue q(path);
        q.submit("a", "req-a");
    }
    // Simulate a kill mid-append: partial bytes of a new record.
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "Q1 12ab";
    }
    DurableQueue q(path);
    const auto pending = q.pending();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].first, "a");
    q.submit("b", "req-b"); // journal still writable after recovery
    EXPECT_EQ(q.pending().size(), 2u);
}

// ----- fork isolation (shared with the fuzz campaign) ---------------------

TEST(Isolation, CleanChildDeliversOutput)
{
    IsolationOptions iso;
    iso.timeoutMs = 10000;
    const ChildResult r = runForkIsolated(
        [](int fd) {
            writeAll(fd, "verdict bytes");
            std::_Exit(0);
        },
        iso);
    EXPECT_EQ(r.outcome, ChildOutcome::Finished);
    EXPECT_TRUE(r.cleanExit());
    EXPECT_EQ(r.output, "verdict bytes");
}

TEST(Isolation, CrashingChildIsClassified)
{
    IsolationOptions iso;
    const ChildResult r =
        runForkIsolated([](int) { std::_Exit(86); }, iso);
    EXPECT_EQ(r.outcome, ChildOutcome::Finished);
    EXPECT_FALSE(r.cleanExit());
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitStatus, 86);
    EXPECT_EQ(r.exitDetail(), "child exited with status 86");
}

TEST(Isolation, WatchdogKillsHungChild)
{
    IsolationOptions iso;
    iso.timeoutMs = 200;
    iso.subject = "job";
    const ChildResult r = runForkIsolated(
        [](int) {
            for (;;)
                ::poll(nullptr, 0, 1000);
        },
        iso);
    EXPECT_EQ(r.outcome, ChildOutcome::Timeout);
    EXPECT_EQ(watchdogDetail(iso), "watchdog killed the job after 200 ms");
}

TEST(Isolation, OnDataSeesChunksAsTheyArrive)
{
    IsolationOptions iso;
    iso.timeoutMs = 10000;
    std::string streamed;
    iso.onData = [&](const char *p, std::size_t n) {
        streamed.append(p, n);
    };
    const ChildResult r = runForkIsolated(
        [](int fd) {
            writeAll(fd, "first ");
            writeAll(fd, "second");
            std::_Exit(0);
        },
        iso);
    EXPECT_EQ(r.outcome, ChildOutcome::Finished);
    // Every byte the child wrote reached both the onData hook and the
    // final output (the hook observes, it does not consume).
    EXPECT_EQ(streamed, "first second");
    EXPECT_EQ(r.output, "first second");
}

TEST(Isolation, RetryWithBackoffCountsAttempts)
{
    RetryPolicy policy;
    policy.maxRetries = 3;
    policy.baseDelayMs = 1;
    int calls = 0;
    EXPECT_EQ(retryWithBackoff(policy, [&] { return ++calls == 3; }), 3);
    EXPECT_EQ(calls, 3);
    calls = 0;
    EXPECT_EQ(retryWithBackoff(policy, [&] {
                  ++calls;
                  return false;
              }),
              4); // 1 attempt + 3 retries, all failing
    EXPECT_EQ(calls, 4);
}

// ----- daemon pipeline (in-process, no socket) ----------------------------

TEST(ServiceDaemon, ComputesCachesAndServesHits)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobSpec spec = smallJob();
    const JobResult first = daemon.handle(spec);
    ASSERT_TRUE(first.ok()) << first.errorJson;
    EXPECT_EQ(first.source, ResultSource::Simulated);
    EXPECT_EQ(first.attempts, 1);
    EXPECT_EQ(encodeOutcome(first.outcome),
              encodeOutcome(directRun(spec)));

    const JobResult second = daemon.handle(spec);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.source, ResultSource::Cached);
    EXPECT_EQ(encodeOutcome(second.outcome),
              encodeOutcome(first.outcome));
    EXPECT_EQ(daemon.counters().sims.load(), 1u);
    EXPECT_EQ(daemon.counters().cacheHits.load(), 1u);
}

TEST(ServiceDaemon, CacheSurvivesDaemonRestart)
{
    TempDir tmp;
    const JobSpec spec = smallJob(Technique::Dac);
    std::string firstEncoded;
    {
        Daemon daemon(poolOnlyOptions(tmp));
        std::string err;
        ASSERT_TRUE(daemon.start(&err)) << err;
        const JobResult rs = daemon.handle(spec);
        ASSERT_TRUE(rs.ok());
        firstEncoded = encodeOutcome(rs.outcome);
    }
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    const JobResult rs = daemon.handle(spec);
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs.source, ResultSource::Cached);
    EXPECT_EQ(encodeOutcome(rs.outcome), firstEncoded);
    EXPECT_EQ(daemon.counters().sims.load(), 0u);
}

TEST(ServiceDaemon, ConcurrentIdenticalJobsShareOneSimulation)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobSpec spec = smallJob(Technique::Cae);
    JobResult a, b;
    std::thread ta([&] { a = daemon.handle(spec); });
    std::thread tb([&] { b = daemon.handle(spec); });
    ta.join();
    tb.join();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(encodeOutcome(a.outcome), encodeOutcome(b.outcome));
    // The second submission either joined the in-flight job or hit the
    // fresh cache entry; it never re-simulated.
    EXPECT_EQ(daemon.counters().sims.load(), 1u);
    EXPECT_EQ(daemon.counters().dedup.load() +
                  daemon.counters().cacheHits.load(),
              1u);
}

TEST(ServiceDaemon, ChaosCrashesAndTimeoutsAreRetriedToSuccess)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.maxRetries = 12;
    opt.timeoutMs = 20000;
    std::string cerr2;
    ASSERT_TRUE(
        ChaosSpec::parse("crash=0.4,timeout=0.2,seed=11", &opt.chaos,
                         &cerr2));
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobSpec spec = smallJob();
    const JobResult rs = daemon.handle(spec);
    ASSERT_TRUE(rs.ok()) << rs.errorJson;
    // The injected failures delayed the result but never changed it.
    EXPECT_EQ(encodeOutcome(rs.outcome), encodeOutcome(directRun(spec)));
    EXPECT_EQ(daemon.counters().crashes.load() +
                  daemon.counters().timeouts.load(),
              static_cast<std::uint64_t>(rs.attempts - 1));
}

TEST(ServiceDaemon, RepeatedCrasherIsBlacklisted)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.maxRetries = 1;
    opt.crashLimit = 2;
    std::string cerr2;
    ASSERT_TRUE(ChaosSpec::parse("crash=1.0,seed=1", &opt.chaos, &cerr2));
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobSpec spec = smallJob();
    for (int i = 0; i < 2; ++i) {
        const JobResult rs = daemon.handle(spec);
        EXPECT_EQ(rs.status, JobStatus::Retryable);
        EXPECT_TRUE(rs.retryable());
        EXPECT_NE(rs.errorJson.find("\"kind\":\"crash\""),
                  std::string::npos);
    }
    // The crash budget is spent: the daemon serves the structured
    // error without burning another worker.
    const std::uint64_t crashesBefore = daemon.counters().crashes.load();
    const JobResult rs = daemon.handle(spec);
    EXPECT_EQ(rs.status, JobStatus::Failed);
    EXPECT_FALSE(rs.retryable());
    EXPECT_EQ(daemon.counters().blacklisted.load(), 1u);
    EXPECT_EQ(daemon.counters().crashes.load(), crashesBefore);
}

TEST(ServiceDaemon, UnknownBenchmarkIsStructuredError)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    JobSpec spec = smallJob();
    spec.bench = "NOPE";
    const JobResult rs = daemon.handle(spec);
    EXPECT_EQ(rs.status, JobStatus::Failed);
    EXPECT_FALSE(rs.retryable());
    EXPECT_NE(rs.errorJson.find("\"kind\":\"bad-request\""),
              std::string::npos);
    EXPECT_EQ(daemon.counters().badRequests.load(), 1u);
    // The daemon survives and still serves good jobs.
    EXPECT_TRUE(daemon.handle(smallJob()).ok());
}

TEST(ServiceDaemon, MalformedFaultSpecIsStructuredError)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    JobSpec spec = smallJob();
    spec.faultSpec = "bogus@@spec";
    const JobResult rs = daemon.handle(spec);
    EXPECT_EQ(rs.status, JobStatus::Failed);
    EXPECT_NE(rs.errorJson.find("\"kind\":\"bad-request\""),
              std::string::npos);
}

TEST(ServiceDaemon, OutcomeWithSimulationErrorIsStillCached)
{
    // A run that fails *inside* the simulator (here: an unrecoverable
    // injected fault under baseline-degradation) is a valid, complete
    // result — exactly what a direct runWorkload() returns — and must
    // be cached and served like any other.
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    JobSpec spec = smallJob(Technique::Dac);
    spec.faultSpec = "invalidate@1000";
    const JobResult first = daemon.handle(spec);
    ASSERT_TRUE(first.ok()) << first.errorJson;
    EXPECT_TRUE(first.outcome.fellBack);
    const JobResult second = daemon.handle(spec);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.source, ResultSource::Cached);
    EXPECT_EQ(encodeOutcome(second.outcome),
              encodeOutcome(first.outcome));
}

TEST(ServiceDaemon, QuarantinesCorruptCacheEntryAndRecomputes)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    const JobSpec spec = smallJob();
    const JobResult first = daemon.handle(spec);
    ASSERT_TRUE(first.ok());

    // Corrupt the entry on disk behind the daemon's back.
    const std::string entryPath = (tmp.path / "state" / "cache" /
                                   (daemon.cacheKey(spec) + ".result"))
                                      .string();
    ASSERT_TRUE(fs::exists(entryPath));
    std::string entry = readFile(entryPath);
    entry[entry.size() / 2] ^= 0x01;
    writeFile(entryPath, entry);

    const JobResult second = daemon.handle(spec);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.source, ResultSource::Simulated); // recomputed
    EXPECT_EQ(encodeOutcome(second.outcome),
              encodeOutcome(first.outcome));
    EXPECT_EQ(daemon.counters().sims.load(), 2u);
    EXPECT_NE(daemon.summaryLine().find("quarantined=1"),
              std::string::npos);
    EXPECT_TRUE(fs::exists(entryPath + ".quarantined"));

    // And the recomputed entry serves verified hits again.
    const JobResult third = daemon.handle(spec);
    EXPECT_EQ(third.source, ResultSource::Cached);
}

TEST(ServiceDaemon, ResumesBacklogFromDurableQueue)
{
    TempDir tmp;
    const std::string dir = (tmp.path / "state").string();
    fs::create_directories(dir);
    const JobSpec specA = smallJob(Technique::Mta);
    JobSpec specB = smallJob(Technique::Cae);
    specB.id = 2;

    // A dead daemon's journal: two jobs submitted, never completed —
    // one journalled in the typed j2 form, one by a pre-DSF2 daemon
    // in the legacy q1 form. Both must resume.
    std::string keyA, keyB;
    {
        DaemonOptions probe = poolOnlyOptions(tmp);
        Daemon d(probe);
        std::string err;
        ASSERT_TRUE(d.start(&err)) << err;
        keyA = d.cacheKey(specA);
        keyB = d.cacheKey(specB);
    }
    {
        DurableQueue q(dir + "/queue.journal");
        q.submit(keyA, encodeSpec(specA, 2));
        q.submit(keyB, encodeSpec(specB, 1));
    }

    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    EXPECT_EQ(daemon.counters().resumed.load(), 2u);

    // The backlog jobs run without any client attached; wait for the
    // results to land in the cache, then resubmissions are pure hits.
    for (const std::string &key : {keyA, keyB}) {
        const std::string entry =
            (fs::path(dir) / "cache" / (key + ".result")).string();
        for (int i = 0; i < 600 && !fs::exists(entry); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        ASSERT_TRUE(fs::exists(entry));
    }
    const JobResult rsA = daemon.handle(specA);
    ASSERT_TRUE(rsA.ok());
    EXPECT_EQ(rsA.source, ResultSource::Cached);
    EXPECT_EQ(encodeOutcome(rsA.outcome), encodeOutcome(directRun(specA)));
    const JobResult rsB = daemon.handle(specB);
    ASSERT_TRUE(rsB.ok());
    EXPECT_EQ(rsB.source, ResultSource::Cached);
    EXPECT_EQ(encodeOutcome(rsB.outcome), encodeOutcome(directRun(specB)));

    // The queue is drained: a third daemon resumes nothing.
    daemon.stop();
    Daemon fresh(poolOnlyOptions(tmp));
    ASSERT_TRUE(fresh.start(&err)) << err;
    EXPECT_EQ(fresh.counters().resumed.load(), 0u);
}

// ----- admission control + weighted fairness ------------------------------

TEST(ServiceDaemon, OverDepthSubmissionIsStructuredOverloaded)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.workers = 1;
    opt.queueDepth = 1;
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    // A long job (~1s) reliably occupies carol's one admission slot
    // while the over-depth submission arrives.
    JobSpec specA;
    specA.id = 1;
    specA.bench = "KM";
    specA.tech = Technique::Baseline;
    specA.setScale(2.0);
    specA.client = "carol";
    JobSpec specB = smallJob();
    specB.id = 2;
    specB.client = "carol";
    JobSpec specC = smallJob();
    specC.id = 3;
    specC.scaleBits += 1; // distinct job
    specC.client = "dave";

    JobResult a;
    std::thread ta([&] { a = daemon.handle(specA); });
    ASSERT_TRUE(waitForJournalKey(tmp, daemon.cacheKey(specA)));

    // carol is at her depth: a structured rejection, never a hang or
    // an unbounded buffer.
    const JobResult b = daemon.handle(specB);
    EXPECT_EQ(b.status, JobStatus::Overloaded);
    EXPECT_TRUE(b.retryable());
    EXPECT_NE(b.errorJson.find("overloaded"), std::string::npos);
    EXPECT_EQ(daemon.counters().overloaded.load(), 1u);

    // The bound is per client: dave's job is admitted, queues behind
    // the running job, and completes normally.
    const JobResult c = daemon.handle(specC);
    EXPECT_TRUE(c.ok()) << c.errorJson;

    ta.join();
    EXPECT_TRUE(a.ok()) << a.errorJson;
}

TEST(ServiceDaemon, WeightedClientsCompleteWithinFairnessBand)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.workers = 1; // serialize completions so order is observable
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    // A plug job holds the single worker while both competing clients
    // queue their full sweeps behind it.
    JobSpec plug;
    plug.id = 1;
    plug.bench = "KM";
    plug.tech = Technique::Baseline;
    plug.setScale(2.0);
    plug.client = "plug";
    std::thread plugThread([&] { daemon.handle(plug); });
    ASSERT_TRUE(waitForJournalKey(tmp, daemon.cacheKey(plug)));

    std::mutex orderMu;
    std::vector<char> order;
    std::vector<std::thread> threads;
    std::atomic<int> failed{0};
    for (int i = 0; i < 24; ++i) {
        threads.emplace_back([&, i] {
            JobSpec spec = smallJob();
            spec.id = static_cast<std::uint64_t>(i) + 10;
            spec.setScale(0.01);
            const bool isAlpha = i < 12;
            spec.scaleBits += static_cast<std::uint64_t>(i); // distinct
            spec.client = isAlpha ? "alpha" : "bravo";
            spec.weight = isAlpha ? 8 : 1;
            const JobResult rs = daemon.handle(spec);
            if (!rs.ok())
                failed.fetch_add(1);
            std::lock_guard<std::mutex> g(orderMu);
            order.push_back(isAlpha ? 'A' : 'B');
        });
    }
    for (std::thread &t : threads)
        t.join();
    plugThread.join();
    EXPECT_EQ(failed.load(), 0);
    ASSERT_EQ(order.size(), 24u);

    // The stride schedule interleaves ~8 alpha completions per bravo:
    // alpha (weight 8) must own the lion's share of the first twelve
    // completions instead of the FIFO coin-flip an unweighted queue
    // would give.
    int alphaEarly = 0;
    for (int i = 0; i < 12; ++i)
        if (order[static_cast<std::size_t>(i)] == 'A')
            ++alphaEarly;
    EXPECT_GE(alphaEarly, 8) << std::string(order.begin(), order.end());
}

// ----- progress streaming -------------------------------------------------

TEST(ServiceDaemon, StreamedJobDeliversBoundarySamplesAndExactOutcome)
{
    TempDir tmp;
    Daemon daemon(poolOnlyOptions(tmp));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    JobSpec spec;
    spec.id = 42;
    spec.bench = "SP";
    spec.tech = Technique::Dac;
    spec.setScale(0.05);
    spec.progress = true;

    std::vector<JobProgress> frames;
    const JobResult rs = daemon.handle(spec, [&](const JobProgress &p) {
        frames.push_back(p);
    });
    ASSERT_TRUE(rs.ok()) << rs.errorJson;
    EXPECT_EQ(rs.source, ResultSource::Simulated);

    // The streamed outcome is byte-identical to a direct run without
    // any observability: obs never feeds the result.
    EXPECT_EQ(encodeOutcome(rs.outcome), encodeOutcome(directRun(spec)));

    // The stream is the run's real boundary timeline: the same
    // samples, in order, that a local obs run records — ending at the
    // run's exact final cycle.
    RunOptions direct;
    direct.tech = spec.tech;
    direct.scale = spec.scale();
    direct.obs.stalls = true;
    direct.obs.timeline = true;
    std::vector<TimelineSample> golden;
    StallStats goldenStalls;
    direct.obs.onSample = [&](const TimelineSample &t,
                              const StallStats &s) {
        golden.push_back(t);
        goldenStalls = s;
    };
    runWorkload(spec.bench, direct);

    ASSERT_GE(frames.size(), 2u);
    ASSERT_EQ(frames.size(), golden.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
        EXPECT_EQ(frames[i].id, spec.id);
        EXPECT_EQ(frames[i].sample, golden[i]) << "sample " << i;
    }
    EXPECT_EQ(frames.back().sample.cycle, rs.outcome.stats.cycles);
    EXPECT_EQ(frames.back().stalls.idleSlots, goldenStalls.idleSlots);
    EXPECT_EQ(frames.back().stalls.reasons, goldenStalls.reasons);
    EXPECT_EQ(daemon.counters().progressFrames.load(), frames.size());
}

TEST(ServiceSocket, StreamingEndToEndThroughTypedClient)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    {
        Client cli(opt.socketPath);
        JobSpec spec;
        spec.bench = "SP";
        spec.tech = Technique::Dac;
        spec.setScale(0.05);
        spec.progress = true;

        int frames = 0;
        std::uint64_t lastCycle = 0;
        bool monotone = true;
        cli.onProgress([&](const JobProgress &p) {
            ++frames;
            if (p.sample.cycle <= lastCycle)
                monotone = false;
            lastCycle = p.sample.cycle;
        });
        JobResult rs;
        std::string cerr2;
        ASSERT_TRUE(cli.call(spec, &rs, &cerr2)) << cerr2;
        ASSERT_TRUE(rs.ok()) << rs.errorJson;

        // Every frame arrived before the result, in run order, and the
        // stream ended exactly where the run did.
        EXPECT_GE(frames, 2);
        EXPECT_TRUE(monotone);
        EXPECT_EQ(lastCycle, rs.outcome.stats.cycles);
        EXPECT_EQ(encodeOutcome(rs.outcome),
                  encodeOutcome(directRun(spec)));
    }
    daemon.requestStop();
    server.join();
}

// ----- shard routing ------------------------------------------------------

TEST(ServiceRouter, FailsOverToSiblingShardWithIdenticalResult)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "live.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    {
        const std::string deadSocket = (tmp.path / "dead.sock").string();
        RouterOptions ropt;
        ropt.failoverMs = 500;
        ShardRouter router({deadSocket, opt.socketPath}, ropt);

        // Pick a job whose preferred shard is the dead one, so the
        // call must walk the preference order.
        JobSpec spec = smallJob(Technique::Dac);
        while (router.rank(router.keyFor(spec))[0] != 0)
            spec.scaleBits += 1;

        JobResult rs;
        std::string cerr2;
        ASSERT_TRUE(router.call(spec, &rs, &cerr2)) << cerr2;
        ASSERT_TRUE(rs.ok()) << rs.errorJson;
        // Content addressing makes failover invisible: the sibling
        // computed the byte-identical outcome.
        EXPECT_EQ(encodeOutcome(rs.outcome),
                  encodeOutcome(directRun(spec)));
        EXPECT_EQ(daemon.counters().sims.load(), 1u);
    }
    daemon.requestStop();
    server.join();
}

// ----- socket end to end --------------------------------------------------

TEST(ServiceSocket, EndToEndOverUnixSocket)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    {
        Client cli(opt.socketPath);
        const JobSpec spec = smallJob();
        JobResult rs;
        std::string cerr2;
        ASSERT_TRUE(cli.call(spec, &rs, &cerr2)) << cerr2;
        ASSERT_TRUE(rs.ok()) << rs.errorJson;
        EXPECT_EQ(rs.id, spec.id);
        EXPECT_EQ(encodeOutcome(rs.outcome),
                  encodeOutcome(directRun(spec)));

        // Same connection, second call: served from the cache.
        JobResult again;
        ASSERT_TRUE(cli.call(spec, &again, &cerr2)) << cerr2;
        EXPECT_EQ(again.source, ResultSource::Cached);
    }
    daemon.requestStop();
    server.join();
    EXPECT_EQ(daemon.counters().sims.load(), 1u);
    EXPECT_EQ(daemon.counters().cacheHits.load(), 1u);
}

TEST(ServiceSocket, PipelinedSubmitsResolveOutOfOrderWaits)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    {
        Client cli(opt.socketPath);
        // Three jobs in flight on one connection before any wait().
        const std::uint64_t id1 = cli.submit(smallJob());
        const std::uint64_t id2 = cli.submit(smallJob(Technique::Cae));
        const std::uint64_t id3 = cli.submit(smallJob(Technique::Dac));
        EXPECT_NE(id1, id2);
        EXPECT_NE(id2, id3);

        // Waiting in reverse order still resolves every job.
        JobResult rs;
        std::string cerr2;
        ASSERT_TRUE(cli.wait(id3, &rs, &cerr2)) << cerr2;
        EXPECT_TRUE(rs.ok());
        ASSERT_TRUE(cli.wait(id1, &rs, &cerr2)) << cerr2;
        EXPECT_TRUE(rs.ok());
        ASSERT_TRUE(cli.wait(id2, &rs, &cerr2)) << cerr2;
        EXPECT_TRUE(rs.ok());

        // An id that names no submitted job is a client-side error,
        // not a hang.
        EXPECT_FALSE(cli.wait(9999, &rs, &cerr2));
        EXPECT_FALSE(cerr2.empty());
    }
    daemon.requestStop();
    server.join();
}

TEST(ServiceSocket, PredictAnsweredStaticallyOnMissAndFromCacheOnHit)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    {
        Client cli(opt.socketPath);
        JobSpec spec = smallJob(Technique::Dac);
        spec.kind = JobKind::Predict;
        std::string cerr2;

        // Cold cache: the static predictor answers instantly, without
        // simulating, and the estimate is never cached.
        JobResult est;
        ASSERT_TRUE(cli.call(spec, &est, &cerr2)) << cerr2;
        ASSERT_TRUE(est.ok()) << est.errorJson;
        EXPECT_EQ(est.source, ResultSource::Predicted);
        EXPECT_EQ(daemon.counters().sims.load(), 0u);
        EXPECT_EQ(daemon.counters().estimates.load(), 1u);

        // The estimate is exactly the static model's.
        GpuMemory gmem;
        PreparedWorkload prep =
            findWorkload(spec.bench).prepare(gmem, spec.scale());
        const RunOptions defaults;
        PredictReport rep =
            predictKernel(prep.kernel, predictLaunches(prep),
                          defaults.gpu, defaults.dac);
        EXPECT_EQ(est.outcome.stats.cycles, rep.dac.estimateCycles);
        EXPECT_EQ(est.outcome.anyDecoupled, rep.predictedAnyDecoupled);

        // A later run request still simulates (the estimate did not
        // poison the cache) ...
        JobSpec run = smallJob(Technique::Dac);
        JobResult real;
        ASSERT_TRUE(cli.call(run, &real, &cerr2)) << cerr2;
        ASSERT_TRUE(real.ok()) << real.errorJson;
        EXPECT_EQ(real.source, ResultSource::Simulated);
        EXPECT_EQ(daemon.counters().sims.load(), 1u);

        // ... and a predict request after it is served the real cached
        // outcome, not an estimate.
        JobResult hit;
        ASSERT_TRUE(cli.call(spec, &hit, &cerr2)) << cerr2;
        ASSERT_TRUE(hit.ok());
        EXPECT_EQ(hit.source, ResultSource::Cached);
        EXPECT_EQ(encodeOutcome(hit.outcome),
                  encodeOutcome(real.outcome));
    }
    daemon.requestStop();
    server.join();
}

TEST(ServiceSocket, GarbageBytesGetStructuredErrorNotCrash)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    // Hand-rolled raw connection speaking garbage.
    const int fd = rawConnect(opt.socketPath);
    writeAll(fd, "this is not a frame and never will be");
    std::string buf;
    ASSERT_TRUE(readWithDeadline(fd, 10000, &buf));
    ::close(fd);
    std::string payload, detail;
    ASSERT_EQ(popFrame(&buf, &payload, &detail), FrameStatus::Ok);
    JobResult rs;
    ASSERT_TRUE(decodeResult(payload, &rs));
    EXPECT_FALSE(rs.ok());
    EXPECT_NE(rs.errorJson.find("bad-frame"), std::string::npos);
    EXPECT_EQ(daemon.counters().badRequests.load(), 1u);

    // The daemon shrugged it off: a well-formed client still works.
    Client cli(opt.socketPath);
    JobResult good;
    std::string cerr2;
    ASSERT_TRUE(cli.call(smallJob(), &good, &cerr2)) << cerr2;
    EXPECT_TRUE(good.ok());

    daemon.requestStop();
    server.join();
}

TEST(ServiceSocket, MalformedTypedSpecGetsStructuredRejection)
{
    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    // A well-framed DSF2 message whose j2 payload is malformed: the
    // daemon must answer a typed Failed result — and keep the
    // connection alive for the valid spec that follows.
    const int fd = rawConnect(opt.socketPath);
    writeAll(fd,
             frameMessage("j2 id=1 bench=BS tech=warp-drive",
                          frameMagicV2));
    writeAll(fd, frameMessage(encodeSpec(smallJob()), frameMagicV2));
    ::shutdown(fd, SHUT_WR);
    std::string buf;
    ASSERT_TRUE(readWithDeadline(fd, 60000, &buf));
    ::close(fd);

    std::string payload, detail;
    int version = 0;
    ASSERT_EQ(popFrame(&buf, &payload, &detail, &version),
              FrameStatus::Ok);
    EXPECT_EQ(version, 2); // the reply is framed in the wire's protocol
    JobResult rejected;
    ASSERT_TRUE(decodeResult(payload, &rejected));
    EXPECT_EQ(rejected.status, JobStatus::Failed);
    EXPECT_NE(rejected.errorJson.find("bad-request"), std::string::npos);
    EXPECT_NE(rejected.errorJson.find("technique"), std::string::npos);

    ASSERT_EQ(popFrame(&buf, &payload, &detail, &version),
              FrameStatus::Ok);
    JobResult good;
    ASSERT_TRUE(decodeResult(payload, &good));
    EXPECT_TRUE(good.ok()) << good.errorJson;
    EXPECT_EQ(daemon.counters().badRequests.load(), 1u);

    daemon.requestStop();
    server.join();
}

TEST(ServiceSocket, RecordedV1CorpusRoundTripsThroughDaemon)
{
    // The recorded DSF1 corpus: byte-for-byte requests an old client
    // sent. A DSF2 daemon must serve each one on a DSF1-framed
    // connection with the outcome a direct local run produces.
    const fs::path dir = fs::path(DACSIM_CORPUS_DIR) / "service";
    std::vector<fs::path> corpus;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().rfind("v1-", 0) == 0)
            corpus.push_back(entry.path());
    std::sort(corpus.begin(), corpus.end());
    ASSERT_GE(corpus.size(), 4u);

    TempDir tmp;
    DaemonOptions opt = poolOnlyOptions(tmp);
    opt.socketPath = (tmp.path / "dacsimd.sock").string();
    Daemon daemon(opt);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.serve(); });

    for (const fs::path &file : corpus) {
        const std::string wire = readFile(file);

        // What the recorded request *means*, per the codec.
        std::string reqBuf = wire, reqPayload, detail;
        int version = 0;
        ASSERT_EQ(popFrame(&reqBuf, &reqPayload, &detail, &version),
                  FrameStatus::Ok)
            << file;
        EXPECT_EQ(version, 1) << file;
        JobSpec spec;
        ASSERT_TRUE(decodeSpec(reqPayload, &spec, &err)) << file << err;

        // Replay the recorded bytes verbatim.
        const int fd = rawConnect(opt.socketPath);
        writeAll(fd, wire);
        ::shutdown(fd, SHUT_WR);
        std::string buf;
        ASSERT_TRUE(readWithDeadline(fd, 60000, &buf)) << file;
        ::close(fd);

        std::string payload;
        ASSERT_EQ(popFrame(&buf, &payload, &detail, &version),
                  FrameStatus::Ok)
            << file;
        // The reply stays on the connection's protocol: DSF1 framing,
        // p1 payload.
        EXPECT_EQ(version, 1) << file;
        EXPECT_EQ(payloadTag(payload), "p1") << file;
        JobResult rs;
        ASSERT_TRUE(decodeResult(payload, &rs)) << file;
        ASSERT_TRUE(rs.ok()) << file << ": " << rs.errorJson;
        EXPECT_EQ(rs.id, spec.id) << file;
        EXPECT_EQ(encodeOutcome(rs.outcome),
                  encodeOutcome(directRun(spec)))
            << file;
    }
    daemon.requestStop();
    server.join();
    EXPECT_EQ(daemon.counters().badRequests.load(), 0u);
}
