/**
 * @file
 * Checkpoint/restore, state-hash chain, resumable-run, and sweep
 * journal tests (DESIGN.md §9).
 *
 * The core acceptance property: a run interrupted at an arbitrary
 * audit boundary and resumed from its snapshot produces bit-identical
 * final statistics, output checksums, and state-hash chain to the
 * uninterrupted run — for compute- and memory-bound workloads, with
 * and without DAC, and with fault injection active.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness/journal.h"
#include "harness/runner.h"
#include "sim/gpu.h"

namespace fs = std::filesystem;
using namespace dacsim;

namespace
{

/** Per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = std::string("dacsim_ckpt_") +
                           info->test_suite_name() + "_" + info->name();
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        path = fs::temp_directory_path() / name;
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

/** Small-machine options so each run stays fast but still spans many
 * audit boundaries. */
RunOptions
smallOpt(Technique tech)
{
    RunOptions opt;
    opt.tech = tech;
    opt.gpu.numSms = 2;
    opt.scale = 1.0;
    return opt;
}

void
expectSameResults(const RunOutcome &a, const RunOutcome &b)
{
    EXPECT_TRUE(a.stats == b.stats);
    EXPECT_EQ(a.checksums, b.checksums);
    EXPECT_EQ(a.hashChain, b.hashChain);
    EXPECT_EQ(a.lastStateHash, b.lastStateHash);
}

/**
 * The round-trip matrix body: run @p bench clean, then again with a
 * simulated kill mid-run (haltAtCycle) and checkpointing on; the
 * harness auto-retries from the snapshot and must reproduce the clean
 * run bit-identically.
 */
void
roundTrip(const std::string &bench, Technique tech, const char *faults)
{
    TempDir tmp;
    RunOptions opt = smallOpt(tech);
    if (faults != nullptr)
        opt.faults = FaultPlan::parse(faults);

    RunOutcome clean = runWorkload(bench, opt);
    ASSERT_TRUE(clean.ok()) << clean.error.what;
    ASSERT_GT(clean.stats.cycles, 3u * 4096)
        << bench << " too short to checkpoint mid-run";

    RunOptions ck = opt;
    ck.checkpoint.dir = tmp.path.string();
    ck.checkpoint.tag = bench;
    ck.checkpoint.everyCycles = 4096; // snapshot every audit boundary
    ck.checkpoint.haltAtCycle = clean.stats.cycles / 2;

    RunOutcome resumed = runWorkload(bench, ck);
    ASSERT_TRUE(resumed.ok()) << resumed.error.what;
    EXPECT_TRUE(resumed.resumed)
        << "halt knob never fired or retry did not restore";
    expectSameResults(clean, resumed);
}

} // namespace

// ----- round-trip matrix ---------------------------------------------------

TEST(CheckpointRoundTrip, MemoryBoundBaseline)
{
    roundTrip("SP", Technique::Baseline, nullptr);
}

TEST(CheckpointRoundTrip, MemoryBoundDac)
{
    roundTrip("SP", Technique::Dac, nullptr);
}

TEST(CheckpointRoundTrip, ComputeBoundBaseline)
{
    roundTrip("BS", Technique::Baseline, nullptr);
}

TEST(CheckpointRoundTrip, ComputeBoundDac)
{
    roundTrip("BS", Technique::Dac, nullptr);
}

TEST(CheckpointRoundTrip, MemoryBoundDacWithFaults)
{
    roundTrip("SP", Technique::Dac, "seed=7;mshr@0-400000:12");
}

TEST(CheckpointRoundTrip, ComputeBoundBaselineWithFaults)
{
    roundTrip("BS", Technique::Baseline, "seed=9;mshr@0-400000:8");
}

TEST(CheckpointRoundTrip, MtaWithPrefetchBuffer)
{
    roundTrip("SP", Technique::Mta, nullptr);
}

// ----- multi-launch workloads ---------------------------------------------

TEST(CheckpointRoundTrip, MultiLaunchWorkload)
{
    // BFS re-launches with per-launch parameters; the snapshot must
    // record which launch it interrupted and the resume must rejoin
    // the launch loop there.
    roundTrip("BFS", Technique::Baseline, nullptr);
}

// ----- hash chain properties ----------------------------------------------

TEST(HashChain, SimCoreInvariant)
{
    // The hash chain folds at 4096-cycle boundaries; every simulation
    // core must fold identical digests at identical cycles.
    RunOptions stepped = smallOpt(Technique::Dac);
    stepped.gpu.simCore = SimCore::Stepped;
    RunOutcome a = runWorkload("SP", stepped);
    ASSERT_TRUE(a.ok());
    for (SimCore core : {SimCore::FastForward, SimCore::Event}) {
        RunOptions opt = smallOpt(Technique::Dac);
        opt.gpu.simCore = core;
        RunOutcome b = runWorkload("SP", opt);
        ASSERT_TRUE(b.ok()) << simCoreName(core);
        EXPECT_TRUE(a.stats == b.stats) << simCoreName(core);
        EXPECT_EQ(a.hashChain, b.hashChain) << simCoreName(core);
    }
}

TEST(HashChain, HasLinkPerBoundaryAndLaunch)
{
    RunOutcome out = runWorkload("SP", smallOpt(Technique::Baseline));
    ASSERT_TRUE(out.ok());
    ASSERT_FALSE(out.hashChain.empty());
    // One link per 4096-cycle boundary crossed, plus one per launch.
    EXPECT_GE(out.hashChain.size(), out.stats.cycles / 4096);
    EXPECT_EQ(out.hashChain.back().cycle, out.stats.cycles);
    EXPECT_EQ(out.hashChain.back().hash, out.stats.stateHash);
    // The chain is strictly ordered in time.
    for (std::size_t i = 1; i < out.hashChain.size(); ++i)
        EXPECT_LE(out.hashChain[i - 1].cycle, out.hashChain[i].cycle);
}

TEST(HashChain, PerturbationLocalizesToOneInterval)
{
    RunOptions opt = smallOpt(Technique::Baseline);
    RunOutcome clean = runWorkload("BS", opt);
    ASSERT_TRUE(clean.ok());
    ASSERT_GT(clean.stats.cycles, 3u * 4096);

    Cycle divergeAt = clean.stats.cycles / 2;
    RunOptions pert = opt;
    pert.gpu.hashPerturbCycle = divergeAt;
    RunOutcome bad = runWorkload("BS", pert);
    ASSERT_TRUE(bad.ok());

    // Simulation itself is untouched: stats except the hash agree.
    RunStats cleanNoHash = clean.stats;
    RunStats badNoHash = bad.stats;
    cleanNoHash.stateHash = badNoHash.stateHash = 0;
    EXPECT_TRUE(cleanNoHash == badNoHash);
    EXPECT_EQ(clean.checksums, bad.checksums);

    // The chains agree up to the interval containing divergeAt and
    // differ from that link onwards (the chain is cumulative).
    ASSERT_EQ(clean.hashChain.size(), bad.hashChain.size());
    std::size_t first = clean.hashChain.size();
    for (std::size_t i = 0; i < clean.hashChain.size(); ++i) {
        if (clean.hashChain[i].hash != bad.hashChain[i].hash) {
            first = i;
            break;
        }
    }
    ASSERT_LT(first, clean.hashChain.size()) << "perturbation not seen";
    const Cycle lo =
        first == 0 ? 0 : clean.hashChain[first - 1].cycle;
    const Cycle hi = clean.hashChain[first].cycle;
    EXPECT_GT(divergeAt, lo);
    EXPECT_LE(divergeAt, hi);
    for (std::size_t i = first; i < clean.hashChain.size(); ++i)
        EXPECT_NE(clean.hashChain[i].hash, bad.hashChain[i].hash);
}

// ----- snapshot format robustness -----------------------------------------

TEST(SnapshotFormat, TruncatedSnapshotIsFatalNotCrash)
{
    TempDir tmp;
    RunOptions opt = smallOpt(Technique::Baseline);
    opt.checkpoint.dir = tmp.path.string();
    opt.checkpoint.tag = "t";
    opt.checkpoint.everyCycles = 4096;
    RunOutcome out = runWorkload("BS", opt);
    ASSERT_TRUE(out.ok());
    fs::path snap = tmp.path / "t.snap";
    ASSERT_TRUE(fs::exists(snap));

    // Truncate the snapshot and try to restore it.
    auto size = fs::file_size(snap);
    fs::resize_file(snap, size / 2);
    RunOptions resume = opt;
    resume.checkpoint.resume = true;
    RunOutcome bad = runWorkload("BS", resume);
    EXPECT_EQ(bad.error.kind, RunErrorKind::Fatal);
    EXPECT_NE(bad.error.what.find("snapshot"), std::string::npos);
}

TEST(SnapshotFormat, CorruptSectionIsFatalNotCrash)
{
    TempDir tmp;
    RunOptions opt = smallOpt(Technique::Baseline);
    opt.checkpoint.dir = tmp.path.string();
    opt.checkpoint.tag = "t";
    opt.checkpoint.everyCycles = 4096;
    ASSERT_TRUE(runWorkload("BS", opt).ok());
    fs::path snap = tmp.path / "t.snap";

    // Flip one byte in the middle: some section CRC must catch it.
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(snap) / 2));
    char c = 0;
    f.read(&c, 1);
    f.seekp(-1, std::ios::cur);
    c = static_cast<char>(c ^ 0x5a);
    f.write(&c, 1);
    f.close();

    RunOptions resume = opt;
    resume.checkpoint.resume = true;
    RunOutcome bad = runWorkload("BS", resume);
    EXPECT_EQ(bad.error.kind, RunErrorKind::Fatal);
}

TEST(SnapshotFormat, WrongWorkloadRestoreIsFatal)
{
    TempDir tmp;
    RunOptions opt = smallOpt(Technique::Baseline);
    opt.checkpoint.dir = tmp.path.string();
    opt.checkpoint.tag = "shared";
    opt.checkpoint.everyCycles = 4096;
    ASSERT_TRUE(runWorkload("BS", opt).ok());

    // Same tag, different workload: an identity check must fire. For
    // SP (single-launch) the launch-index bound trips first, because
    // the BS snapshot was taken during its second launch; either way
    // the diagnostic names the snapshot as the culprit.
    RunOptions resume = opt;
    resume.checkpoint.resume = true;
    RunOutcome bad = runWorkload("SP", resume);
    EXPECT_EQ(bad.error.kind, RunErrorKind::Fatal);
    EXPECT_NE(bad.error.what.find("snapshot"), std::string::npos);
}

TEST(SnapshotFormat, WrongConfigRestoreIsFatal)
{
    TempDir tmp;
    RunOptions opt = smallOpt(Technique::Baseline);
    opt.checkpoint.dir = tmp.path.string();
    opt.checkpoint.tag = "cfg";
    opt.checkpoint.everyCycles = 4096;
    ASSERT_TRUE(runWorkload("BS", opt).ok());

    RunOptions resume = opt;
    resume.checkpoint.resume = true;
    resume.gpu.numSms = 3; // different machine
    RunOutcome bad = runWorkload("BS", resume);
    EXPECT_EQ(bad.error.kind, RunErrorKind::Fatal);
    EXPECT_NE(bad.error.what.find("fingerprint"), std::string::npos);
}

// ----- error-report fields -------------------------------------------------

TEST(RunDiagnostics, HaltedRunReportsCheckpointAndHash)
{
    TempDir tmp;
    RunOptions opt = smallOpt(Technique::Baseline);
    RunOutcome clean = runWorkload("BS", opt);
    ASSERT_TRUE(clean.ok());

    // Halt with checkpointing disabled so no auto-retry can rescue the
    // run; the error outcome still carries the last folded hash.
    RunOptions halt = opt;
    halt.checkpoint.haltAtCycle = clean.stats.cycles / 2;
    halt.faults = FaultPlan::parse("seed=11;mshr@1-2:1");
    RunOutcome out = runWorkload("BS", halt);
    ASSERT_FALSE(out.error.ok());
    EXPECT_EQ(out.error.kind, RunErrorKind::Halted);
    EXPECT_GE(out.error.cycle, halt.checkpoint.haltAtCycle);
    EXPECT_NE(out.lastStateHash, 0u);
    EXPECT_EQ(out.faultSeed, 11u);
    EXPECT_TRUE(out.checkpointId.empty());
}

// ----- journal -------------------------------------------------------------

TEST(Journal, OutcomeEncodeDecodeRoundTrip)
{
    RunOutcome out;
    out.stats.cycles = 123456;
    out.stats.warpInsts = 999;
    out.stats.stateHash = 0xdeadbeefcafe1234ull;
    out.checksums = {1, 2, 0xffffffffffffffffull};
    out.anyDecoupled = true;
    out.numDecoupledLoads = 3;
    out.numDecoupledStores = 2;
    out.numDecoupledPreds = 1;
    out.error.kind = RunErrorKind::FaultInjected;
    out.error.cycle = 777;
    out.error.what = "a message with spaces, %, and\nnewlines";
    out.fellBack = true;
    out.lastStateHash = out.stats.stateHash;
    out.checkpointId = "/tmp/some dir/x.snap";
    out.faultSeed = 42;
    out.resumed = true;

    RunOutcome back;
    ASSERT_TRUE(decodeOutcome(encodeOutcome(out), &back));
    EXPECT_TRUE(out.stats == back.stats);
    EXPECT_EQ(out.checksums, back.checksums);
    EXPECT_EQ(out.anyDecoupled, back.anyDecoupled);
    EXPECT_EQ(out.numDecoupledLoads, back.numDecoupledLoads);
    EXPECT_EQ(out.error.kind, back.error.kind);
    EXPECT_EQ(out.error.cycle, back.error.cycle);
    EXPECT_EQ(out.error.what, back.error.what);
    EXPECT_EQ(out.fellBack, back.fellBack);
    EXPECT_EQ(out.lastStateHash, back.lastStateHash);
    EXPECT_EQ(out.checkpointId, back.checkpointId);
    EXPECT_EQ(out.faultSeed, back.faultSeed);
    EXPECT_EQ(out.resumed, back.resumed);
}

TEST(Journal, RejectsMalformedPayloads)
{
    RunOutcome out;
    EXPECT_FALSE(decodeOutcome("", &out));
    EXPECT_FALSE(decodeOutcome("o2 cycles=1", &out));
    EXPECT_FALSE(decodeOutcome("o1 cycles=1", &out)); // stats incomplete
    std::string good = encodeOutcome(RunOutcome{});
    EXPECT_TRUE(decodeOutcome(good, &out));
    EXPECT_FALSE(decodeOutcome(good.substr(0, good.size() / 2), &out));
    EXPECT_FALSE(decodeOutcome(good + " bogus=1", &out));
}

TEST(Journal, SurvivesKillAndTornLine)
{
    TempDir tmp;
    std::string path = (tmp.path / "sweep.journal").string();
    RunOutcome a;
    a.stats.cycles = 10;
    a.stats.stateHash = 111;
    RunOutcome b;
    b.stats.cycles = 20;
    b.stats.stateHash = 222;
    {
        SweepJournal j(path);
        j.record("SP|Dac|0", a);
        j.record("BS|Baseline|1", b);
    }
    // Simulate a kill mid-write: append half a record.
    {
        SweepJournal scratch(path);
        scratch.record("LUD|Dac|2", a);
    }
    {
        std::ifstream in(path);
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        std::ofstream os(path, std::ios::trunc);
        os << all.substr(0, all.size() - 25); // torn final line
    }
    SweepJournal j(path);
    EXPECT_EQ(j.size(), 2u);
    RunOutcome got;
    ASSERT_TRUE(j.lookup("SP|Dac|0", &got));
    EXPECT_TRUE(got.stats == a.stats);
    ASSERT_TRUE(j.lookup("BS|Baseline|1", &got));
    EXPECT_TRUE(got.stats == b.stats);
    EXPECT_FALSE(j.lookup("LUD|Dac|2", &got));
    // The torn line does not poison later appends.
    j.record("LUD|Dac|2", b);
    SweepJournal reload(path);
    EXPECT_EQ(reload.size(), 3u);
}

// The exhaustive truncation-recovery regression: a kill mid-write can
// tear the journal at ANY byte offset. Opening the journal must keep
// every record whose line survived intact, drop exactly the torn
// tail, physically truncate it away, and leave the file appendable —
// at every possible offset, not just the ones earlier tests sampled.
TEST(Journal, TruncationRecoveryAtEveryByteOffset)
{
    TempDir tmp;
    const std::string full = (tmp.path / "full.journal").string();
    {
        LineJournal j(full, "T1");
        j.record("alpha", "payload one");
        j.record("beta", "payload two");
        j.record("gamma", "payload three");
    }
    std::string bytes;
    {
        std::ifstream in(full, std::ios::binary);
        bytes.assign((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    }
    // A record survives a cut iff every byte of its line content is in
    // the prefix; the trailing '\n' itself is optional (a line that is
    // complete except for its newline still passes its CRC and is
    // kept). newlineAt[k] is where record k's line content ends.
    std::vector<std::size_t> newlineAt;
    for (std::size_t i = 0; i < bytes.size(); ++i)
        if (bytes[i] == '\n')
            newlineAt.push_back(i);
    ASSERT_EQ(newlineAt.size(), 3u);
    auto intactRecords = [&](std::size_t n) {
        std::size_t lines = 0;
        for (std::size_t end : newlineAt)
            if (n >= end)
                ++lines;
        return lines;
    };
    const std::string kv[][2] = {
        {"alpha", "payload one"},
        {"beta", "payload two"},
        {"gamma", "payload three"},
    };
    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
        const std::string path =
            (tmp.path / ("cut" + std::to_string(cut) + ".journal"))
                .string();
        {
            std::ofstream os(path, std::ios::binary | std::ios::trunc);
            os << bytes.substr(0, cut);
        }
        const std::size_t want = intactRecords(cut);
        {
            LineJournal j(path, "T1");
            ASSERT_EQ(j.size(), want) << "cut at byte " << cut;
            std::string payload;
            for (std::size_t k = 0; k < want; ++k) {
                ASSERT_TRUE(j.lookup(kv[k][0], &payload))
                    << "cut at byte " << cut;
                EXPECT_EQ(payload, kv[k][1]);
            }
            // The torn bytes are physically gone: recovery only ever
            // shrinks the file, back to the last intact record.
            const std::size_t keptEnd =
                want == 0 ? 0 : std::min(cut, newlineAt[want - 1] + 1);
            EXPECT_LE(fs::file_size(path), keptEnd)
                << "cut at byte " << cut;
            // Recovery leaves the journal appendable and re-readable.
            j.record("delta", "late arrival");
        }
        LineJournal reload(path, "T1");
        EXPECT_EQ(reload.size(), want + 1) << "cut at byte " << cut;
        std::string payload;
        ASSERT_TRUE(reload.lookup("delta", &payload));
        EXPECT_EQ(payload, "late arrival");
    }
}

// A final line that is complete except for its newline (the kill hit
// between the payload and the '\n') is a valid record and must be
// kept, not dropped.
TEST(Journal, UnterminatedButIntactFinalLineIsKept)
{
    TempDir tmp;
    const std::string path = (tmp.path / "j.journal").string();
    std::string bytes;
    {
        LineJournal j(path, "T1");
        j.record("a", "one");
        j.record("b", "two");
        std::ifstream in(path, std::ios::binary);
        bytes.assign((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_EQ(bytes.back(), '\n');
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << bytes.substr(0, bytes.size() - 1);
    }
    {
        LineJournal j(path, "T1");
        EXPECT_EQ(j.size(), 2u);
        std::string payload;
        ASSERT_TRUE(j.lookup("b", &payload));
        EXPECT_EQ(payload, "two");
        j.record("c", "three"); // must start on a fresh line
    }
    LineJournal reload(path, "T1");
    EXPECT_EQ(reload.size(), 3u);
    std::string payload;
    ASSERT_TRUE(reload.lookup("c", &payload));
    EXPECT_EQ(payload, "three");
}
