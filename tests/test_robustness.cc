/**
 * @file
 * Robustness tests: fault-plan parsing and determinism, result
 * preservation under each injected fault kind, the deadlock watchdog's
 * structured dump, the DAC-to-baseline fallback, and the crash-isolated
 * runWorkload contract.
 */

#include <gtest/gtest.h>

#include "common/fault.h"
#include "compiler/cfg.h"
#include "harness/runner.h"
#include "isa/assembler.h"
#include "mem/gpu_memory.h"
#include "sim/audit.h"
#include "sim/gpu.h"

using namespace dacsim;

namespace
{

// A small, fast run of a memory-intensive streaming benchmark — the
// fault hooks under test all sit on the memory/DAC path.
RunOptions
smallRun(Technique tech)
{
    RunOptions opt;
    opt.tech = tech;
    opt.scale = 0.25;
    return opt;
}

constexpr const char *kBench = "SP";

TEST(FaultPlanParse, RoundTrip)
{
    FaultPlan p = FaultPlan::parse(
        "seed=42;mshr@0-200000:30;jitter@0:400;invalidate@5000/2");
    EXPECT_EQ(p.seed(), 42u);
    ASSERT_EQ(p.events().size(), 3u);

    const FaultEvent &mshr = p.events()[0];
    EXPECT_EQ(mshr.kind, FaultKind::MshrSteal);
    EXPECT_EQ(mshr.begin, 0u);
    EXPECT_EQ(mshr.end, 200000u);
    EXPECT_EQ(mshr.magnitude, 30u);
    EXPECT_EQ(mshr.sm, -1);

    const FaultEvent &jit = p.events()[1];
    EXPECT_EQ(jit.kind, FaultKind::DramJitter);
    EXPECT_EQ(jit.end, ~static_cast<Cycle>(0)); // open-ended window
    EXPECT_EQ(jit.magnitude, 400u);

    const FaultEvent &inv = p.events()[2];
    EXPECT_EQ(inv.kind, FaultKind::AffineInvalidate);
    EXPECT_EQ(inv.begin, 5000u);
    EXPECT_EQ(inv.sm, 2);
}

TEST(FaultPlanParse, KindNames)
{
    EXPECT_STREQ(FaultPlan::kindName(FaultKind::MshrSteal), "mshr");
    EXPECT_STREQ(FaultPlan::kindName(FaultKind::DramJitter), "jitter");
    EXPECT_STREQ(FaultPlan::kindName(FaultKind::TagLockBlock),
                 "taglock");
    EXPECT_STREQ(FaultPlan::kindName(FaultKind::AffineBackpressure),
                 "backpressure");
    EXPECT_STREQ(FaultPlan::kindName(FaultKind::AffineInvalidate),
                 "invalidate");
}

TEST(FaultPlanParse, MalformedSpecIsFatal)
{
    EXPECT_THROW(FaultPlan::parse("bogus@0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("mshr"), FatalError);
    EXPECT_THROW(FaultPlan::parse("mshr@"), FatalError);
    EXPECT_THROW(FaultPlan::parse("jitter@10:x"), FatalError);
    EXPECT_THROW(FaultPlan::parse("seed="), FatalError);
}

TEST(FaultPlan, WindowAndSmFiltering)
{
    FaultPlan p = FaultPlan::parse("mshr@100-200:8/1");
    EXPECT_EQ(p.stolenMshrs(1, 99), 0);
    EXPECT_EQ(p.stolenMshrs(1, 100), 8);  // [begin, end) inclusive start
    EXPECT_EQ(p.stolenMshrs(1, 199), 8);
    EXPECT_EQ(p.stolenMshrs(1, 200), 0);  // exclusive end
    EXPECT_EQ(p.stolenMshrs(0, 150), 0);  // wrong SM
}

TEST(FaultPlan, JitterIsDeterministic)
{
    FaultPlan a = FaultPlan::parse("seed=7;jitter@0:100");
    FaultPlan b = FaultPlan::parse("seed=7;jitter@0:100");
    FaultPlan c = FaultPlan::parse("seed=8;jitter@0:100");
    bool anyDiffers = false;
    for (Cycle now = 0; now < 64; ++now) {
        Cycle j = a.dramJitter(0x1000, now);
        EXPECT_EQ(j, b.dramJitter(0x1000, now));
        EXPECT_LE(j, 100u);
        anyDiffers |= j != c.dramJitter(0x1000, now);
    }
    EXPECT_TRUE(anyDiffers) << "seed should perturb the jitter stream";
}

TEST(FaultInjection, SameSeedSameStats)
{
    RunOptions opt = smallRun(Technique::Dac);
    opt.faults = FaultPlan::parse("seed=3;mshr@0-50000:24;jitter@0:200");
    RunOutcome a = runWorkload(kBench, opt);
    RunOutcome b = runWorkload(kBench, opt);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.faultsInjected, b.stats.faultsInjected);
    EXPECT_EQ(a.checksums, b.checksums);
}

TEST(FaultInjection, MshrStealPreservesResults)
{
    RunOptions clean = smallRun(Technique::Dac);
    RunOutcome ref = runWorkload(kBench, clean);
    ASSERT_TRUE(ref.ok());

    RunOptions opt = smallRun(Technique::Dac);
    opt.faults = FaultPlan::parse("mshr@0:28");
    RunOutcome r = runWorkload(kBench, opt);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.fellBack);
    EXPECT_GT(r.stats.faultsInjected, 0u);
    EXPECT_EQ(r.checksums, ref.checksums)
        << "timing faults must not change functional results";
    EXPECT_GE(r.stats.cycles, ref.stats.cycles);
}

TEST(FaultInjection, DramJitterPreservesResults)
{
    RunOptions clean = smallRun(Technique::Baseline);
    RunOutcome ref = runWorkload(kBench, clean);
    ASSERT_TRUE(ref.ok());

    RunOptions opt = smallRun(Technique::Baseline);
    opt.faults = FaultPlan::parse("jitter@0:300");
    RunOutcome r = runWorkload(kBench, opt);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.stats.faultsInjected, 0u);
    EXPECT_EQ(r.checksums, ref.checksums);
    EXPECT_GE(r.stats.cycles, ref.stats.cycles);
}

TEST(FaultInjection, TagLockAndBackpressurePreserveResults)
{
    RunOptions clean = smallRun(Technique::Dac);
    RunOutcome ref = runWorkload(kBench, clean);
    ASSERT_TRUE(ref.ok());

    RunOptions opt = smallRun(Technique::Dac);
    opt.faults =
        FaultPlan::parse("taglock@0-20000;backpressure@1000-30000");
    RunOutcome r = runWorkload(kBench, opt);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.fellBack);
    EXPECT_EQ(r.checksums, ref.checksums);
}

TEST(Fallback, AffineInvalidateDegradesToBaseline)
{
    RunOptions base = smallRun(Technique::Baseline);
    RunOutcome ref = runWorkload(kBench, base);
    ASSERT_TRUE(ref.ok());

    RunOptions opt = smallRun(Technique::Dac);
    opt.faults = FaultPlan::parse("invalidate@1000");
    RunOutcome r = runWorkload(kBench, opt);
    EXPECT_TRUE(r.fellBack);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.error.kind, RunErrorKind::FaultInjected);
    EXPECT_GE(r.error.cycle, 1000u);
    EXPECT_EQ(r.checksums, ref.checksums)
        << "the fallback run is a plain baseline execution";
    EXPECT_EQ(r.stats.cycles, ref.stats.cycles);
}

TEST(Fallback, UntrappedInvalidateThrowsInjectedFaultError)
{
    RunOptions opt = smallRun(Technique::Dac);
    opt.faults = FaultPlan::parse("invalidate@1000");
    opt.trapErrors = false;
    EXPECT_THROW(runWorkload(kBench, opt), InjectedFaultError);
}

TEST(Watchdog, LivelockDumpsWarpStates)
{
    // Same hand-built starved-dequeue livelock as GpuWatchdog in
    // test_gpu.cc, but with a tightened watchdog window and a check of
    // the structured DeadlockError contract.
    GpuMemory gmem;
    Kernel na = assemble(".kernel na\n.param out\nld.deq.u32 r0;\n"
                         "exit;\n");
    analyzeControlFlow(na);
    Kernel aff = assemble(".kernel aff\n.param out\nexit;\n");
    analyzeControlFlow(aff);
    GpuConfig gcfg;
    gcfg.numSms = 1;
    gcfg.watchdogCycles = 1u << 14;
    Gpu gpu(gcfg, Technique::Dac, DacConfig{}, CaeConfig{}, MtaConfig{},
            gmem);
    std::vector<RegVal> params = {0x100000};
    LaunchInfo li;
    li.grid = {1, 1, 1};
    li.block = {32, 1, 1};
    li.params = &params;
    li.kernel = &na;
    li.affineKernel = &aff;
    try {
        gpu.launch(li);
        FAIL() << "expected the watchdog to fire";
    } catch (const DeadlockError &e) {
        EXPECT_GE(e.cycle(), 1u << 14);
        std::string what = e.what();
        EXPECT_NE(what.find("deadlock"), std::string::npos);
        EXPECT_NE(what.find("warp"), std::string::npos)
            << "the dump should carry per-warp states: " << what;
        EXPECT_NE(what.find("pc="), std::string::npos) << what;
    }
}

TEST(Watchdog, EveryCoreFiresAtSameCycle)
{
    // Fast-forward and event-core jumps clamp to 4096-cycle audit
    // boundaries, so a deadlocked kernel must trip the watchdog at
    // exactly the same simulated cycle whether a core skipped the
    // idle stretch or stepped through it cycle by cycle.
    auto deadlockCycle = [](SimCore core) -> Cycle {
        GpuMemory gmem;
        Kernel na = assemble(".kernel na\n.param out\nld.deq.u32 r0;\n"
                             "exit;\n");
        analyzeControlFlow(na);
        Kernel aff = assemble(".kernel aff\n.param out\nexit;\n");
        analyzeControlFlow(aff);
        GpuConfig gcfg;
        gcfg.numSms = 1;
        gcfg.watchdogCycles = 1u << 14;
        gcfg.simCore = core;
        Gpu gpu(gcfg, Technique::Dac, DacConfig{}, CaeConfig{},
                MtaConfig{}, gmem);
        std::vector<RegVal> params = {0x100000};
        LaunchInfo li;
        li.grid = {1, 1, 1};
        li.block = {32, 1, 1};
        li.params = &params;
        li.kernel = &na;
        li.affineKernel = &aff;
        try {
            gpu.launch(li);
        } catch (const DeadlockError &e) {
            return e.cycle();
        }
        ADD_FAILURE() << "expected the watchdog to fire ("
                      << simCoreName(core) << ")";
        return 0;
    };
    Cycle stepped = deadlockCycle(SimCore::Stepped);
    EXPECT_GE(stepped, 1u << 14);
    EXPECT_EQ(stepped, deadlockCycle(SimCore::FastForward));
    EXPECT_EQ(stepped, deadlockCycle(SimCore::Event));
}

TEST(Runner, UnknownWorkloadIsTrappedFatal)
{
    RunOptions opt;
    RunOutcome r = runWorkload("NOPE", opt);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error.kind, RunErrorKind::Fatal);
    EXPECT_FALSE(r.error.what.empty());

    opt.trapErrors = false;
    EXPECT_THROW(runWorkload("NOPE", opt), FatalError);
}

TEST(Audit, ErrorCarriesStructuredContext)
{
    AuditContext ctx;
    ctx.structure = "scoreboard";
    ctx.cycle = 1234;
    ctx.sm = 3;
    ctx.warp = 7;
    try {
        auditCheck(false, ctx, "entry never drained: r", 5);
        FAIL() << "auditCheck(false, ...) must throw";
    } catch (const AuditError &e) {
        EXPECT_STREQ(e.context().structure, "scoreboard");
        EXPECT_EQ(e.context().cycle, 1234u);
        EXPECT_EQ(e.context().sm, 3);
        EXPECT_EQ(e.context().warp, 7);
        std::string what = e.what();
        EXPECT_NE(what.find("scoreboard"), std::string::npos);
        EXPECT_NE(what.find("cycle=1234"), std::string::npos);
        EXPECT_NE(what.find("sm=3"), std::string::npos);
        EXPECT_NE(what.find("warp=7"), std::string::npos);
        EXPECT_NE(what.find("entry never drained: r5"),
                  std::string::npos);
    }
    // AuditError is a PanicError so legacy catch sites still work.
    EXPECT_THROW(auditCheck(false, ctx, "x"), PanicError);
    EXPECT_NO_THROW(auditCheck(true, ctx, "x"));
}

TEST(Audit, CleanRunsPassAllAuditors)
{
    // The periodic auditors run every 4096 cycles on every machine;
    // a clean sweep over all four techniques must not trip any.
    for (Technique t : {Technique::Baseline, Technique::Cae,
                        Technique::Mta, Technique::Dac}) {
        RunOptions opt = smallRun(t);
        opt.trapErrors = false; // let any audit failure surface loudly
        RunOutcome r = runWorkload(kBench, opt);
        EXPECT_TRUE(r.ok()) << techniqueName(t);
    }
}

} // namespace
