/**
 * @file
 * Whole-suite property tests: for every one of the 29 benchmarks
 * (Table 2) and every machine variant, the final-memory checksums
 * must be bit-identical to the baseline — the decoupling/prefetching
 * mechanisms are pure optimizations — and basic structural properties
 * of each run (instruction counts, affine coverage) must hold.
 *
 * Runs at reduced scale to keep the suite fast; the bench binaries
 * re-run everything at full scale.
 */

#include <gtest/gtest.h>

#include "harness/runner.h"

using namespace dacsim;

namespace
{

constexpr double testScale = 0.12;

struct Case
{
    std::string workload;
    Technique tech;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    return info.param.workload + "_" +
           techniqueName(info.param.tech);
}

class WorkloadEquivalence : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadEquivalence, MatchesBaselineChecksums)
{
    const auto &[name, tech] = GetParam();
    RunOptions opt;
    opt.scale = testScale;
    RunOutcome base = runWorkload(name, opt);
    opt.tech = tech;
    RunOutcome other = runWorkload(name, opt);
    ASSERT_EQ(other.checksums.size(), base.checksums.size());
    EXPECT_EQ(other.checksums, base.checksums);
    EXPECT_GT(other.stats.cycles, 0u);
    EXPECT_GT(other.stats.warpInsts, 0u);
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const Workload &w : allWorkloads())
        for (Technique t :
             {Technique::Cae, Technique::Mta, Technique::Dac})
            cases.push_back({w.name, t});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadEquivalence,
                         ::testing::ValuesIn(allCases()), caseName);

// ----- per-workload structural checks ---------------------------------------

class WorkloadStructure : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadStructure, DacReducesOrPreservesWork)
{
    RunOptions opt;
    opt.scale = testScale;
    RunOutcome base = runWorkload(GetParam(), opt);
    opt.tech = Technique::Dac;
    RunOutcome dac = runWorkload(GetParam(), opt);
    // Non-affine warps never execute more than the baseline.
    EXPECT_LE(dac.stats.warpInsts, base.stats.warpInsts);
    if (dac.anyDecoupled) {
        EXPECT_GT(dac.stats.affineWarpInsts, 0u);
        EXPECT_LE(dac.stats.warpInsts, base.stats.warpInsts);
    } else {
        EXPECT_EQ(dac.stats.warpInsts, base.stats.warpInsts);
    }
    // Every early fetch is accounted inside total load requests.
    EXPECT_LE(dac.stats.affineLoadRequests, dac.stats.loadRequests);
}

TEST_P(WorkloadStructure, CaeExecutesSameInstructionCount)
{
    RunOptions opt;
    opt.scale = testScale;
    RunOutcome base = runWorkload(GetParam(), opt);
    opt.tech = Technique::Cae;
    RunOutcome cae = runWorkload(GetParam(), opt);
    // CAE accelerates issue but does not remove instructions (paper
    // Section 5.3).
    EXPECT_EQ(cae.stats.warpInsts, base.stats.warpInsts);
    EXPECT_LE(cae.stats.caeAffineInsts, cae.stats.warpInsts);
    EXPECT_LE(cae.stats.cycles, base.stats.cycles * 101 / 100 + 2000);
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadStructure,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &info) { return info.param; });

// ----- suite-level sanity ----------------------------------------------------

TEST(WorkloadRegistry, HasTable2Composition)
{
    const auto &all = allWorkloads();
    EXPECT_EQ(all.size(), 29u);
    int mem = 0;
    for (const Workload &w : all)
        mem += w.memoryIntensive;
    EXPECT_EQ(mem, 18);
    // Abbreviations are unique.
    for (std::size_t i = 0; i < all.size(); ++i)
        for (std::size_t j = i + 1; j < all.size(); ++j)
            EXPECT_NE(all[i].name, all[j].name);
}

TEST(WorkloadRegistry, FindByName)
{
    EXPECT_EQ(findWorkload("LIB").fullName, "libor market model");
    EXPECT_THROW(findWorkload("NOPE"), FatalError);
}

TEST(WorkloadRegistry, SuitesMatchTable2)
{
    EXPECT_EQ(findWorkload("CP").suite, 'G');
    EXPECT_EQ(findWorkload("SG").suite, 'R');
    EXPECT_EQ(findWorkload("BT").suite, 'C');
    EXPECT_EQ(findWorkload("MC").suite, 'P');
}

} // namespace
