/**
 * @file
 * CFG construction, post-dominance / reconvergence, and control-
 * dependence tests on the canonical shapes: straight line, diamond,
 * loop, nested loop, early exit.
 */

#include <gtest/gtest.h>

#include "compiler/cfg.h"
#include "isa/assembler.h"

using namespace dacsim;

namespace
{

Kernel
build(const std::string &body)
{
    return assemble(".kernel t\n.param A n\n" + body + "\nexit;\n");
}

TEST(Cfg, StraightLineIsOneBlock)
{
    Kernel k = build("mov r0, 1;\nadd r1, r0, 2;");
    Cfg cfg(k);
    EXPECT_EQ(cfg.numBlocks(), 1);
    EXPECT_EQ(cfg.blocks()[0].first, 0);
    EXPECT_EQ(cfg.blocks()[0].last, 2);
}

TEST(Cfg, DiamondReconvergesAtJoin)
{
    // if (p0) r0=1 else r0=2; join
    Kernel k = build("setp.lt p0, tid.x, 16;\n"
                     "@p0 bra THEN;\n"
                     "mov r0, 2;\n"
                     "bra JOIN;\n"
                     "THEN:\n"
                     "mov r0, 1;\n"
                     "JOIN:\n"
                     "add r1, r0, 0;");
    analyzeControlFlow(k);
    Cfg cfg(k);
    // The conditional branch at pc 1 must reconverge at JOIN (pc 5).
    EXPECT_EQ(k.insts[1].reconvergePc, 5);
    // Both sides are control-dependent on the branch block.
    int thenBlk = cfg.blockOf(4);
    int elseBlk = cfg.blockOf(2);
    int joinBlk = cfg.blockOf(5);
    int brBlk = cfg.blockOf(1);
    EXPECT_EQ(cfg.controlDeps(thenBlk), std::vector<int>{brBlk});
    EXPECT_EQ(cfg.controlDeps(elseBlk), std::vector<int>{brBlk});
    EXPECT_TRUE(cfg.controlDeps(joinBlk).empty());
}

TEST(Cfg, LoopReconvergesAtExit)
{
    Kernel k = build("mov r0, 0;\n"
                     "L:\n"
                     "add r0, r0, 1;\n"
                     "setp.lt p0, r0, 10;\n"
                     "@p0 bra L;\n"
                     "mov r1, r0;");
    analyzeControlFlow(k);
    // The backward branch (pc 3) reconverges at the fall-through.
    EXPECT_EQ(k.insts[3].reconvergePc, 4);
}

TEST(Cfg, LoopBodyControlDependsOnLatch)
{
    Kernel k = build("mov r0, 0;\n"
                     "L:\n"
                     "add r0, r0, 1;\n"
                     "setp.lt p0, r0, 10;\n"
                     "@p0 bra L;\n"
                     "mov r1, r0;");
    Cfg cfg(k);
    int bodyBlk = cfg.blockOf(1);
    auto deps = cfg.controlDeps(bodyBlk);
    // The loop body is control-dependent on its own latch branch.
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_EQ(deps[0], cfg.blockOf(3));
}

TEST(Cfg, NestedDiamondInLoop)
{
    Kernel k = build("mov r0, 0;\n"
                     "L:\n"
                     "setp.lt p1, tid.x, 8;\n"
                     "@p1 bra SKIP;\n"
                     "add r1, r1, 1;\n"
                     "SKIP:\n"
                     "add r0, r0, 1;\n"
                     "setp.lt p0, r0, 4;\n"
                     "@p0 bra L;");
    analyzeControlFlow(k);
    Cfg cfg(k);
    // Inner branch (pc 2) reconverges at SKIP (pc 4).
    EXPECT_EQ(k.insts[2].reconvergePc, 4);
    // The `add r1` block depends only on the inner branch: it does
    // not post-dominate the latch's back-edge target (Ferrante CD).
    auto deps = cfg.controlDeps(cfg.blockOf(3));
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_EQ(deps[0], cfg.blockOf(2));
}

TEST(Cfg, MultipleExits)
{
    Kernel k = build("setp.lt p0, tid.x, 8;\n"
                     "@!p0 bra OUT;\n"
                     "mov r0, 1;\n"
                     "exit;\n"
                     "OUT:\n"
                     "mov r0, 2;");
    analyzeControlFlow(k);
    // Branch at pc 1 has no common post-dominator other than exit.
    EXPECT_EQ(k.insts[1].reconvergePc, -1);
}

TEST(Cfg, RpoStartsAtEntry)
{
    Kernel k = build("bra B;\nA:\nmov r0, 1;\nexit;\nB:\nbra A;");
    Cfg cfg(k);
    ASSERT_FALSE(cfg.rpo().empty());
    EXPECT_EQ(cfg.rpo().front(), 0);
}

TEST(Cfg, PostDominatesSelf)
{
    Kernel k = build("mov r0, 1;");
    Cfg cfg(k);
    EXPECT_TRUE(cfg.postDominates(0, 0));
}

TEST(Cfg, DotOutputMentionsAllBlocks)
{
    Kernel k = build("setp.lt p0, tid.x, 8;\n@p0 bra X;\nmov r0, 1;\n"
                     "X:\nmov r1, 2;");
    Cfg cfg(k);
    std::string dot = cfg.toDot(k);
    for (int b = 0; b < cfg.numBlocks(); ++b)
        EXPECT_NE(dot.find("b" + std::to_string(b)), std::string::npos);
}

TEST(Cfg, FallthroughConditionalToNext)
{
    // A conditional branch whose target IS the fall-through.
    Kernel k = build("setp.lt p0, tid.x, 8;\n@p0 bra N;\nN:\nmov r0, 1;");
    Cfg cfg(k);
    // Successor list is deduplicated.
    int brBlk = cfg.blockOf(1);
    EXPECT_EQ(cfg.blocks()[brBlk].succs.size(), 1u);
}

} // namespace
