/**
 * @file
 * Energy model tests: the event-count accounting, the Fig 21
 * breakdown structure, and the Table-1 DAC overhead energies.
 */

#include <gtest/gtest.h>

#include "energy/energy.h"

using namespace dacsim;

namespace
{

TEST(Energy, ZeroStatsZeroEnergy)
{
    RunStats s;
    EnergyBreakdown e = computeEnergy(s);
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(Energy, ComponentsAccumulate)
{
    RunStats s;
    s.laneOps = 100;
    s.regFileAccesses = 10;
    s.cycles = 1000;
    EnergyParams p;
    EnergyBreakdown e = computeEnergy(s, p);
    EXPECT_DOUBLE_EQ(e.alu, 100 * p.aluPj);
    EXPECT_DOUBLE_EQ(e.reg, 10 * p.regPj);
    EXPECT_DOUBLE_EQ(e.staticEnergy, 1000 * p.staticPjPerCycle);
    EXPECT_DOUBLE_EQ(e.total(), e.alu + e.reg + e.staticEnergy);
    EXPECT_DOUBLE_EQ(e.dynamic(), e.alu + e.reg);
}

TEST(Energy, DacOverheadUsesTable1Energies)
{
    RunStats s;
    s.atqAccesses = 1;
    s.pwaqAccesses = 1;
    s.pwpqAccesses = 1;
    s.affineStackAccesses = 1;
    EnergyParams p;
    EnergyBreakdown e = computeEnergy(s, p);
    // Table 1: 5.3 + 3.4 + 1.5 + 2.7 pJ.
    EXPECT_DOUBLE_EQ(e.dacOverhead, 5.3 + 3.4 + 1.5 + 2.7);
}

TEST(Energy, MemoryHierarchyCounts)
{
    RunStats s;
    s.l1Hits = 2;
    s.l1Misses = 1;
    s.l2Hits = 1;
    s.l2Misses = 1;
    s.dramAccesses = 1;
    s.sharedAccesses = 2;
    EnergyParams p;
    EnergyBreakdown e = computeEnergy(s, p);
    EXPECT_DOUBLE_EQ(e.otherDynamic, 3 * p.l1Pj + 2 * p.l2Pj +
                                         p.dramPj + 2 * p.sharedPj);
}

TEST(Energy, ExpansionOpsChargedToOverhead)
{
    RunStats s;
    s.expansionAluOps = 10;
    EnergyParams p;
    EnergyBreakdown e = computeEnergy(s, p);
    EXPECT_DOUBLE_EQ(e.dacOverhead, 10 * p.aluPj);
    EXPECT_DOUBLE_EQ(e.alu, 0.0);
}

TEST(RunStats, AddMergesEveryCounter)
{
    RunStats a, b;
    a.warpInsts = 1;
    a.affineWarpInsts = 2;
    a.l1Hits = 3;
    a.dacBatches = 4;
    b.warpInsts = 10;
    b.affineWarpInsts = 20;
    b.l1Hits = 30;
    b.dacBatches = 40;
    a.add(b);
    EXPECT_EQ(a.warpInsts, 11u);
    EXPECT_EQ(a.affineWarpInsts, 22u);
    EXPECT_EQ(a.totalWarpInsts(), 33u);
    EXPECT_EQ(a.l1Hits, 33u);
    EXPECT_EQ(a.dacBatches, 44u);
}

} // namespace
