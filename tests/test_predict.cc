/**
 * @file
 * Static performance prediction tests (DESIGN.md §15).
 *
 * Validates the predictor's three claims on real workload kernels:
 * loop trip counts derived from the interval-affine analysis, the
 * guaranteed cycle bound dominating actual simulated runs, and the
 * independently re-derived affine coverage agreeing with the
 * decoupler's split. Also locks the report's text and JSON renderings
 * as golden fixtures (tests/golden/predict_{SP,PF}.{txt,json});
 * regenerate after an intentional model change with:
 *   DACSIM_UPDATE_GOLDEN=1 ./tests/dacsim_tests --gtest_filter='GoldenPredict.*'
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/env.h"
#include "compiler/decoupler.h"
#include "dac/engine.h"
#include "harness/runner.h"
#include "workloads/workload.h"

using namespace dacsim;

namespace
{

PredictReport
predictBench(const std::string &bench, double scale)
{
    GpuMemory gmem;
    PreparedWorkload prep = findWorkload(bench).prepare(gmem, scale);
    const RunOptions defaults;
    return predictKernel(prep.kernel, predictLaunches(prep), defaults.gpu,
                         defaults.dac);
}

TEST(Predict, DerivesCountedLoopTripsFromLaunchParameters)
{
    // SP (scalar product): one counted loop over the per-thread
    // segment — 48 iterations at full scale.
    PredictReport sp = predictBench("SP", 1.0);
    ASSERT_EQ(sp.loops.size(), 1u);
    EXPECT_TRUE(sp.loops[0].bounded);
    EXPECT_EQ(sp.loops[0].maxTrips, 48u);

    // PF (pathfinder): the outer row loop (20 trips) and the inner
    // neighbourhood scan (4 trips).
    PredictReport pf = predictBench("PF", 1.0);
    ASSERT_EQ(pf.loops.size(), 2u);
    std::vector<unsigned long long> trips;
    for (const LoopPredict &lp : pf.loops) {
        EXPECT_TRUE(lp.bounded);
        trips.push_back(lp.maxTrips);
    }
    std::sort(trips.begin(), trips.end());
    EXPECT_EQ(trips, (std::vector<unsigned long long>{4, 20}));
}

TEST(Predict, FlagsDataDependentLoopsAsCapped)
{
    // BFS's frontier loop exits on a data-dependent condition: the
    // interval analysis cannot bound it, so the bound is capped and
    // the per-loop report says so.
    PredictReport bfs = predictBench("BFS", 0.25);
    EXPECT_TRUE(bfs.base.capped);
    EXPECT_TRUE(bfs.dac.capped);
    bool anyUnbounded = false;
    for (const LoopPredict &lp : bfs.loops)
        anyUnbounded = anyUnbounded || !lp.bounded;
    EXPECT_TRUE(anyUnbounded);
}

TEST(Predict, BoundDominatesSimulatedCycles)
{
    // The guaranteed bound must dominate the real simulated cycle
    // count under both techniques. Spot-checked here on a compute-
    // bound (BS) and a memory-bound (SP) kernel at a reduced scale;
    // dacsim-predict --all sweeps all 29 at full scale.
    for (const char *bench : {"BS", "SP", "PF"}) {
        PredictReport rep = predictBench(bench, 0.25);
        for (Technique tech : {Technique::Baseline, Technique::Dac}) {
            RunOptions opt;
            opt.tech = tech;
            opt.scale = 0.25;
            RunOutcome out = runWorkload(bench, opt);
            ASSERT_TRUE(out.ok()) << bench << ": " << out.error.what;
            ASSERT_FALSE(out.fellBack) << bench;
            const TechPredict &tp =
                tech == Technique::Dac ? rep.dac : rep.base;
            EXPECT_FALSE(tp.capped) << bench;
            EXPECT_GE(tp.boundCycles, out.stats.cycles)
                << bench << " under " << techniqueName(tech);
        }
    }
}

TEST(Predict, CoverageAgreesWithTheDecouplerOnEveryKernel)
{
    // The predictor re-derives the decoupling decision from the
    // analysis framework without calling the decoupler; the acceptance
    // criterion is agreement within 5pp, and on the current kernels
    // the re-derivation is exact.
    const RunOptions defaults;
    for (const Workload &wl : allWorkloads()) {
        GpuMemory gmem;
        PreparedWorkload prep = wl.prepare(gmem, 0.1);
        PredictReport rep =
            predictKernel(prep.kernel, predictLaunches(prep),
                          defaults.gpu, defaults.dac);
        DacSplitSummary actual =
            dacActualSplit(decouple(prep.kernel, defaults.dac));
        EXPECT_EQ(rep.predictedAnyDecoupled, actual.anyDecoupled)
            << wl.name;
        EXPECT_LE(std::fabs(rep.predictedCoverage -
                            actual.coveredFraction()),
                  0.05)
            << wl.name << ": predicted " << rep.predictedCoverage
            << " actual " << actual.coveredFraction();
    }
}

TEST(Predict, ReportsWorstCaseCoalescingPerAccess)
{
    // SP streams with a unit-stride access pattern: one line per warp
    // access. Every global access must be graded.
    PredictReport sp = predictBench("SP", 1.0);
    ASSERT_FALSE(sp.accesses.empty());
    for (const AccessPredict &ap : sp.accesses) {
        EXPECT_GE(ap.txPerWarp, 1);
        EXPECT_LE(ap.txPerWarp, warpSize);
    }
    EXPECT_EQ(sp.accesses.front().txPerWarp, 1);
}

void
checkGoldenPredict(const std::string &bench, bool json)
{
    PredictReport rep = predictBench(bench, 1.0);
    const std::string live = json ? rep.renderJson() : rep.renderText();

    const std::string path = std::string(DACSIM_GOLDEN_DIR) +
                             "/predict_" + bench +
                             (json ? ".json" : ".txt");
    if (env().updateGolden) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        os << live;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing fixture " << path
        << " (regenerate with DACSIM_UPDATE_GOLDEN=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(live, want.str())
        << "predicted report changed for " << bench
        << "; if intentional, regenerate with DACSIM_UPDATE_GOLDEN=1 "
           "and commit the fixture diff";
}

TEST(GoldenPredict, MemoryBoundText) { checkGoldenPredict("SP", false); }
TEST(GoldenPredict, MemoryBoundJson) { checkGoldenPredict("SP", true); }
TEST(GoldenPredict, ComputeBoundText) { checkGoldenPredict("PF", false); }
TEST(GoldenPredict, ComputeBoundJson) { checkGoldenPredict("PF", true); }

} // namespace
