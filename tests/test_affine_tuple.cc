/**
 * @file
 * Affine tuple algebra tests: every operation's tuple result must
 * evaluate, for every thread, to exactly what per-thread scalar
 * execution computes — the invariant that makes DAC a pure
 * optimization. Exercised as a property sweep over threads and ops.
 */

#include <gtest/gtest.h>

#include "dac/affine_tuple.h"
#include "sim/alu.h"

using namespace dacsim;

namespace
{

/** Sample thread coordinates for property checks. */
const std::vector<std::pair<Idx3, Idx3>> &
samplePoints()
{
    static const std::vector<std::pair<Idx3, Idx3>> pts = {
        {{0, 0, 0}, {0, 0, 0}}, {{1, 0, 0}, {0, 0, 0}},
        {{31, 0, 0}, {0, 0, 0}}, {{5, 3, 0}, {2, 0, 0}},
        {{0, 7, 2}, {9, 4, 1}}, {{15, 15, 0}, {31, 7, 0}},
    };
    return pts;
}

AffineTuple
makeTuple(RegVal base, RegVal ox, RegVal oy = 0, RegVal bz = 0)
{
    AffineTuple t;
    t.base = base;
    t.tidOff[0] = ox;
    t.tidOff[1] = oy;
    t.ctaOff[0] = bz;
    return t;
}

TEST(AffineTuple, ScalarEvaluatesEverywhere)
{
    AffineTuple t = AffineTuple::scalar(42);
    EXPECT_TRUE(t.isScalar());
    for (auto &[tid, cta] : samplePoints())
        EXPECT_EQ(t.eval(tid, cta), 42);
}

TEST(AffineTuple, IdentityTuples)
{
    for (int d = 0; d < 3; ++d) {
        for (auto &[tid, cta] : samplePoints()) {
            EXPECT_EQ(AffineTuple::tid(d).eval(tid, cta), tid.dim(d));
            EXPECT_EQ(AffineTuple::ctaid(d).eval(tid, cta), cta.dim(d));
        }
    }
}

TEST(AffineTuple, PaperFigure1Example)
{
    // A = (0x100, 4), B = (0x200, 0); C = A + B = (0x300, 4).
    AffineTuple a = makeTuple(0x100, 4);
    AffineTuple b = AffineTuple::scalar(0x200);
    auto c = affineAlu(Opcode::Add, a, b);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->base, 0x300);
    EXPECT_EQ(c->tidOff[0], 4);
    EXPECT_EQ(c->eval({0, 0, 0}, {}), 0x300);
    EXPECT_EQ(c->eval({1, 0, 0}, {}), 0x304);
}

/** Binary ops agree with per-thread scalar execution. */
class TupleBinaryProperty
    : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(TupleBinaryProperty, MatchesPerThread)
{
    Opcode op = GetParam();
    AffineTuple a = makeTuple(100, 4, -2, 64);
    // Second operand must be scalar for mul/shl/mod.
    AffineTuple b = (op == Opcode::Mul || op == Opcode::Shl ||
                     op == Opcode::Mod)
                        ? AffineTuple::scalar(op == Opcode::Shl ? 3 : 7)
                        : makeTuple(-5, 1, 3, 0);
    auto r = affineAlu(op, a, b);
    ASSERT_TRUE(r.has_value()) << opcodeName(op);
    for (auto &[tid, cta] : samplePoints()) {
        RegVal av = a.eval(tid, cta);
        RegVal bv = b.eval(tid, cta);
        EXPECT_EQ(r->eval(tid, cta), aluCompute(op, av, bv))
            << opcodeName(op) << " at tid " << tid.x << "," << tid.y;
    }
}

INSTANTIATE_TEST_SUITE_P(Ops, TupleBinaryProperty,
                         ::testing::Values(Opcode::Add, Opcode::Sub,
                                           Opcode::Mul, Opcode::Shl,
                                           Opcode::Mod));

TEST(AffineTuple, MadMatchesPerThread)
{
    AffineTuple a = makeTuple(3, 2);
    AffineTuple b = AffineTuple::scalar(5);
    AffineTuple c = makeTuple(-7, 0, 4);
    auto r = affineAlu(Opcode::Mad, a, b, c);
    ASSERT_TRUE(r.has_value());
    for (auto &[tid, cta] : samplePoints()) {
        EXPECT_EQ(r->eval(tid, cta),
                  a.eval(tid, cta) * 5 + c.eval(tid, cta));
    }
}

TEST(AffineTuple, ScalarOnlyOps)
{
    AffineTuple s1 = AffineTuple::scalar(0b1100);
    AffineTuple s2 = AffineTuple::scalar(0b1010);
    EXPECT_EQ(affineAlu(Opcode::And, s1, s2)->base, 0b1000);
    EXPECT_EQ(affineAlu(Opcode::Or, s1, s2)->base, 0b1110);
    EXPECT_EQ(affineAlu(Opcode::Xor, s1, s2)->base, 0b0110);
    EXPECT_EQ(affineAlu(Opcode::Shr, s1, AffineTuple::scalar(2))->base, 3);
    EXPECT_EQ(affineAlu(Opcode::Div, AffineTuple::scalar(17),
                        AffineTuple::scalar(5))
                  ->base,
              3);
    EXPECT_EQ(affineAlu(Opcode::Not, s1)->base, ~0b1100);
}

TEST(AffineTuple, NonRepresentableCases)
{
    AffineTuple a = makeTuple(0, 4);
    // affine x affine
    EXPECT_FALSE(affineAlu(Opcode::Mul, a, a).has_value());
    // shift by affine amount
    EXPECT_FALSE(affineAlu(Opcode::Shl, a, a).has_value());
    // bitwise with affine
    EXPECT_FALSE(affineAlu(Opcode::And, a, a).has_value());
    // shr of affine
    EXPECT_FALSE(
        affineAlu(Opcode::Shr, a, AffineTuple::scalar(2)).has_value());
}

// ----- mod-type tuples (Section 4.4) ---------------------------------------

TEST(AffineTuple, ModCreatesModType)
{
    AffineTuple a = makeTuple(5, 3, 0, 7);
    auto m = affineAlu(Opcode::Mod, a, AffineTuple::scalar(11));
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->hasMod);
    EXPECT_FALSE(m->isScalar());
    for (auto &[tid, cta] : samplePoints())
        EXPECT_EQ(m->eval(tid, cta), gpuMod(a.eval(tid, cta), 11));
}

TEST(AffineTuple, ModTypeAddScalarAndAffine)
{
    AffineTuple a = makeTuple(0, 1);
    auto m = affineAlu(Opcode::Mod, a, AffineTuple::scalar(5));
    ASSERT_TRUE(m.has_value());
    auto plus = affineAlu(Opcode::Add, *m, makeTuple(100, 2));
    ASSERT_TRUE(plus.has_value());
    for (auto &[tid, cta] : samplePoints()) {
        EXPECT_EQ(plus->eval(tid, cta),
                  gpuMod(tid.x, 5) + 100 + 2 * tid.x);
    }
    // Subtraction with the mod on the right negates the mod scale.
    auto minus = affineAlu(Opcode::Sub, makeTuple(100, 0), *m);
    ASSERT_TRUE(minus.has_value());
    for (auto &[tid, cta] : samplePoints())
        EXPECT_EQ(minus->eval(tid, cta), 100 - gpuMod(tid.x, 5));
}

TEST(AffineTuple, ModTypeScaling)
{
    AffineTuple a = makeTuple(0, 1);
    auto m = affineAlu(Opcode::Mod, a, AffineTuple::scalar(5));
    auto scaled = affineAlu(Opcode::Mul, *m, AffineTuple::scalar(4));
    ASSERT_TRUE(scaled.has_value());
    for (auto &[tid, cta] : samplePoints())
        EXPECT_EQ(scaled->eval(tid, cta), 4 * gpuMod(tid.x, 5));
    auto shifted = affineAlu(Opcode::Shl, *m, AffineTuple::scalar(2));
    ASSERT_TRUE(shifted.has_value());
    for (auto &[tid, cta] : samplePoints())
        EXPECT_EQ(shifted->eval(tid, cta), 4 * gpuMod(tid.x, 5));
}

TEST(AffineTuple, TwoModTermsRejected)
{
    auto m1 = affineAlu(Opcode::Mod, makeTuple(0, 1),
                        AffineTuple::scalar(5));
    auto m2 = affineAlu(Opcode::Mod, makeTuple(0, 2),
                        AffineTuple::scalar(3));
    EXPECT_FALSE(affineAlu(Opcode::Add, *m1, *m2).has_value());
    EXPECT_FALSE(affineAlu(Opcode::Mod, *m1, AffineTuple::scalar(7))
                     .has_value());
}

TEST(AffineTuple, XOnlyDetection)
{
    EXPECT_TRUE(makeTuple(10, 4).xOnly());
    EXPECT_TRUE(makeTuple(10, 4, 0, 99).xOnly()); // cta offsets allowed
    EXPECT_FALSE(makeTuple(10, 4, 2).xOnly());
    auto m = affineAlu(Opcode::Mod, makeTuple(0, 1),
                       AffineTuple::scalar(5));
    EXPECT_FALSE(m->xOnly());
}

TEST(AffineTuple, ToStringMentionsFields)
{
    AffineTuple t = makeTuple(7, 4);
    EXPECT_NE(t.toString().find("7"), std::string::npos);
    EXPECT_NE(t.toString().find("4"), std::string::npos);
}

} // namespace
