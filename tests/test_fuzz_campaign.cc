/**
 * @file
 * Campaign engine and shrinker regression tier (DESIGN.md §12.3-.4):
 * verdict/case-result codecs, crash-isolated campaign runs, journalled
 * resume with byte-identical reports, verdict stability across job
 * counts, deterministic shrinking to a golden minimal repro, shrink
 * idempotence, and replay of the committed corpus in tests/corpus/.
 *
 * The golden repro fixture is refreshed with DACSIM_UPDATE_GOLDEN=1
 * like every other fixture in tests/golden/.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "fuzz/campaign.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"

using namespace dacsim;
using namespace dacsim::fuzz;

namespace fs = std::filesystem;

namespace
{

/** Per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &suffix = "")
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = std::string("dacsim_fuzz_") +
                           info->test_suite_name() + "_" + info->name() +
                           suffix;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        path = fs::temp_directory_path() / name;
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

/** A small, fast campaign configuration (shared by most tests). */
CampaignOptions
smallCampaign(int numSeeds)
{
    CampaignOptions opt;
    opt.firstSeed = 1;
    opt.numSeeds = numSeeds;
    opt.jobs = 2;
    opt.isolation = CampaignOptions::Isolation::InProcess;
    opt.shrinkFailures = false;
    return opt;
}

// ---------------------------------------------------------------------
// Codecs: the pipe/journal encodings must round-trip exactly — resume
// and crash isolation both ride on them.
// ---------------------------------------------------------------------

TEST(FuzzCodec, VerdictRoundTrips)
{
    OracleVerdict v = runOracleSeed(3, OracleOptions{});
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(v.techs.size(), 4u);

    OracleVerdict back;
    ASSERT_TRUE(decodeVerdict(encodeVerdict(v), &back));
    EXPECT_EQ(back.status, v.status);
    EXPECT_EQ(back.seed, v.seed);
    EXPECT_EQ(back.anyDecoupled, v.anyDecoupled);
    ASSERT_EQ(back.techs.size(), v.techs.size());
    for (std::size_t i = 0; i < v.techs.size(); ++i) {
        EXPECT_EQ(back.techs[i].tech, v.techs[i].tech);
        EXPECT_EQ(back.techs[i].checksum, v.techs[i].checksum);
        EXPECT_EQ(back.techs[i].error, v.techs[i].error);
        EXPECT_EQ(back.techs[i].fellBack, v.techs[i].fellBack);
        EXPECT_EQ(back.techs[i].cycles, v.techs[i].cycles);
        EXPECT_EQ(back.techs[i].lastHash, v.techs[i].lastHash);
        EXPECT_EQ(back.techs[i].chainLinks, v.techs[i].chainLinks);
    }
    // Re-encoding the decoded verdict must be byte-identical (the
    // journal digest depends on it).
    EXPECT_EQ(encodeVerdict(back), encodeVerdict(v));
}

TEST(FuzzCodec, VerdictDecodeRejectsGarbage)
{
    OracleVerdict v;
    EXPECT_FALSE(decodeVerdict("", &v));
    EXPECT_FALSE(decodeVerdict("v2 st=0", &v));
    EXPECT_FALSE(decodeVerdict("nonsense", &v));
}

TEST(FuzzCodec, CaseResultRoundTrips)
{
    CaseResult r;
    r.seed = 17;
    r.status = CaseStatus::Mismatch;
    r.verdict = runOracleSeed(17, OracleOptions{});
    r.verdict.status = OracleStatus::Mismatch;
    r.verdict.detail = "Dac checksum diverged; spaces & %= signs";
    r.detail = r.verdict.detail;
    r.attempts = 3;
    r.faultSeed = 9;
    r.reproPath = "/tmp/repro with space.dacasm";

    CaseResult back;
    ASSERT_TRUE(decodeCaseResult(encodeCaseResult(r), &back));
    EXPECT_EQ(back.seed, r.seed);
    EXPECT_EQ(back.status, r.status);
    EXPECT_EQ(back.detail, r.detail);
    EXPECT_EQ(back.attempts, r.attempts);
    EXPECT_EQ(back.faultSeed, r.faultSeed);
    EXPECT_EQ(back.reproPath, r.reproPath);
    EXPECT_EQ(encodeCaseResult(back), encodeCaseResult(r));
}

TEST(FuzzCodec, FailureJsonUsesReportSchema)
{
    CaseResult r;
    r.seed = 5;
    r.status = CaseStatus::Crash;
    r.detail = "signal 11";
    r.attempts = 3;
    std::string json = caseFailureJson(r);
    // Keys shared with the PR-1 error-report schema, plus the
    // campaign extensions.
    for (const char *key : {"\"figure\"", "\"bench\"", "\"tech\"",
                            "\"status\"", "\"kind\"", "\"seed\"",
                            "\"attempts\"", "\"resumed\""})
        EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
    EXPECT_NE(json.find("\"kind\":\"crash\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------
// Campaign runs: clean trunk seeds must match under every isolation
// mode, and the digest must not depend on parallelism.
// ---------------------------------------------------------------------

TEST(FuzzCampaign, InProcessCleanSeedsAllMatch)
{
    CampaignReport rep = runCampaign(smallCampaign(6));
    EXPECT_TRUE(rep.ok()) << rep.renderJson();
    EXPECT_EQ(rep.numMatch, 6);
    ASSERT_EQ(rep.cases.size(), 6u);
    for (std::size_t i = 0; i < rep.cases.size(); ++i) {
        EXPECT_EQ(rep.cases[i].seed, 1 + i);
        EXPECT_EQ(rep.cases[i].status, CaseStatus::Match);
        EXPECT_FALSE(rep.cases[i].fromJournal);
    }
    EXPECT_NE(rep.verdictDigest, 0u);
}

TEST(FuzzCampaign, ForkIsolationAgreesWithInProcess)
{
    CampaignReport inproc = runCampaign(smallCampaign(4));

    CampaignOptions forked = smallCampaign(4);
    forked.isolation = CampaignOptions::Isolation::Fork;
    CampaignReport rep = runCampaign(forked);
    EXPECT_TRUE(rep.ok()) << rep.renderJson();
    // The child ships its verdict over a pipe; the round trip must not
    // perturb the digest.
    EXPECT_EQ(rep.verdictDigest, inproc.verdictDigest);
    EXPECT_EQ(rep.renderJson(), inproc.renderJson());
}

TEST(FuzzCampaign, DigestIsStableAcrossJobCounts)
{
    CampaignOptions serial = smallCampaign(6);
    serial.jobs = 1;
    CampaignOptions wide = smallCampaign(6);
    wide.jobs = 4;
    CampaignReport a = runCampaign(serial);
    CampaignReport b = runCampaign(wide);
    EXPECT_EQ(a.verdictDigest, b.verdictDigest);
    EXPECT_EQ(a.renderJson(), b.renderJson());
}

TEST(FuzzCampaign, MismatchIsDetectedAndReported)
{
    // The seeded decoupler bug (DacConfig::bugPerturbAffineImm) makes
    // DAC disagree with the baseline on affine-heavy kernels; the
    // campaign must fail loudly, not average it away.
    CampaignOptions opt = smallCampaign(4);
    opt.oracle.dac.bugPerturbAffineImm = true;
    std::vector<CaseResult> seen;
    opt.onCase = [&](const CaseResult &r) { seen.push_back(r); };
    CampaignReport rep = runCampaign(opt);
    EXPECT_FALSE(rep.ok());
    EXPECT_GT(rep.numFailed, 0);
    EXPECT_EQ(seen.size(), 4u);
    bool sawMismatch = false;
    for (const CaseResult &r : rep.cases)
        if (r.status == CaseStatus::Mismatch) {
            sawMismatch = true;
            EXPECT_NE(r.detail.find("DAC"), std::string::npos) << r.detail;
            std::string json = caseFailureJson(r);
            EXPECT_NE(json.find("\"tech\":\"DAC\""), std::string::npos)
                << json;
        }
    EXPECT_TRUE(sawMismatch);
}

// ---------------------------------------------------------------------
// Journalled resume: a partial campaign's journal must be served back
// byte-identically, and a resumed report must equal a straight run's.
// ---------------------------------------------------------------------

TEST(FuzzCampaign, JournalServesCompletedCasesOnRerun)
{
    TempDir tmp;
    CampaignOptions opt = smallCampaign(5);
    opt.dir = tmp.path.string();

    CampaignReport first = runCampaign(opt);
    EXPECT_TRUE(first.ok());
    EXPECT_EQ(first.numFromJournal, 0);
    ASSERT_TRUE(fs::exists(tmp.path / "fuzz.campaign.journal"));

    CampaignReport second = runCampaign(opt);
    EXPECT_EQ(second.numFromJournal, 5);
    for (const CaseResult &r : second.cases)
        EXPECT_TRUE(r.fromJournal) << "seed " << r.seed;
    // The report is resume-invariant: serving every case from the
    // journal must not change a byte of it.
    EXPECT_EQ(second.renderJson(), first.renderJson());
    EXPECT_EQ(second.verdictDigest, first.verdictDigest);
}

TEST(FuzzCampaign, ResumedCampaignMatchesStraightRunByteForByte)
{
    // Simulate a killed campaign: run the first 3 seeds into a
    // journal, then run the full range against the same directory —
    // only the missing seeds execute, and the final report must be
    // byte-identical to a straight uninterrupted run.
    TempDir tmp;
    TempDir fresh("_fresh");

    CampaignOptions partial = smallCampaign(3);
    partial.dir = tmp.path.string();
    runCampaign(partial);

    CampaignOptions resumed = smallCampaign(6);
    resumed.dir = tmp.path.string();
    CampaignReport r = runCampaign(resumed);
    EXPECT_EQ(r.numFromJournal, 3);

    CampaignOptions straight = smallCampaign(6);
    straight.dir = fresh.path.string();
    CampaignReport s = runCampaign(straight);
    EXPECT_EQ(s.numFromJournal, 0);

    EXPECT_EQ(r.renderJson(), s.renderJson());
    EXPECT_EQ(r.verdictDigest, s.verdictDigest);
}

TEST(FuzzCampaign, JournalKeyedOnOptionsNotJustSeed)
{
    // A journal written under one oracle configuration must not be
    // served for another (stale verdicts would defeat the oracle).
    TempDir tmp;
    CampaignOptions opt = smallCampaign(2);
    opt.dir = tmp.path.string();
    runCampaign(opt);

    CampaignOptions changed = opt;
    changed.faultSpec = "seed=9;jitter@0:300";
    CampaignReport rep = runCampaign(changed);
    EXPECT_EQ(rep.numFromJournal, 0);
}

// ---------------------------------------------------------------------
// Shrinker: deterministic minimization of the seeded decoupler bug to
// a golden minimal repro, and idempotence of a second shrink.
// ---------------------------------------------------------------------

OracleOptions
buggyOracle()
{
    OracleOptions opt;
    opt.dac.bugPerturbAffineImm = true;
    return opt;
}

/** First seed in 1..40 the seeded bug actually trips (affine-heavy
 * kernels only), so the fixture survives generator-neutral churn. */
std::uint64_t
firstFailingSeed(const OracleOptions &opt)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        OracleVerdict v = runOracleSeed(seed, opt);
        if (v.status == OracleStatus::Mismatch)
            return seed;
    }
    return 0;
}

TEST(FuzzShrink, SeededBugShrinksToGoldenMinimalRepro)
{
    ShrinkOptions sopt;
    sopt.oracle = buggyOracle();
    sopt.haveReference = true; // differential: trunk must keep passing
    const std::uint64_t seed = firstFailingSeed(sopt.oracle);
    ASSERT_NE(seed, 0u) << "seeded bug no longer trips any seed in 1..40";

    const GeneratedKernel g = generateKernel(seed);
    ShrinkResult res = shrinkCase(g.source, seed, sopt);
    EXPECT_EQ(res.verdict.status, OracleStatus::Mismatch);
    EXPECT_GT(res.droppedLines, 0);
    EXPECT_LT(res.source.size(), g.source.size());

    // Differential shrinking's whole point: the minimized kernel
    // still passes on trunk, so it is committable to tests/corpus/.
    EXPECT_TRUE(runOracle(res.source, seed, OracleOptions{}).ok());

    std::string live = renderRepro(seed, g.params.describe(), res);
    EXPECT_EQ(reproSeed(live), seed);

    std::string path =
        std::string(DACSIM_GOLDEN_DIR) + "/fuzz_shrink_min.dacasm";
    if (env().updateGolden) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        os << live;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing fixture " << path
        << " (regenerate with DACSIM_UPDATE_GOLDEN=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(live, want.str())
        << "shrink result changed; if intentional, regenerate with "
           "DACSIM_UPDATE_GOLDEN=1 and commit the fixture diff";
}

TEST(FuzzShrink, ShrinkIsIdempotent)
{
    ShrinkOptions sopt;
    sopt.oracle = buggyOracle();
    sopt.haveReference = true;
    const std::uint64_t seed = firstFailingSeed(sopt.oracle);
    ASSERT_NE(seed, 0u);

    ShrinkResult once = shrinkCase(generateKernel(seed).source, seed, sopt);
    ShrinkResult twice = shrinkCase(once.source, seed, sopt);
    EXPECT_EQ(twice.source, once.source);
    EXPECT_EQ(twice.droppedLines, 0);
    EXPECT_EQ(twice.narrowedConsts, 0);
}

TEST(FuzzShrink, CampaignWritesReplayableRepro)
{
    TempDir tmp;
    ShrinkOptions sopt;
    sopt.oracle = buggyOracle();
    const std::uint64_t seed = firstFailingSeed(sopt.oracle);
    ASSERT_NE(seed, 0u);

    CampaignOptions opt = smallCampaign(1);
    opt.firstSeed = seed;
    opt.dir = tmp.path.string();
    opt.oracle = sopt.oracle;
    opt.shrinkFailures = true;
    CampaignReport rep = runCampaign(opt);
    ASSERT_EQ(rep.cases.size(), 1u);
    const CaseResult &r = rep.cases.front();
    EXPECT_EQ(r.status, CaseStatus::Mismatch);
    ASSERT_FALSE(r.reproPath.empty());
    ASSERT_TRUE(fs::exists(r.reproPath));

    // The repro is self-contained: replaying it under the failing
    // configuration reproduces the mismatch, and under trunk it
    // passes.
    std::ifstream in(r.reproPath, std::ios::binary);
    std::ostringstream src;
    src << in.rdbuf();
    EXPECT_EQ(reproSeed(src.str()), seed);
    EXPECT_EQ(runOracle(src.str(), seed, sopt.oracle).status,
              OracleStatus::Mismatch);
    EXPECT_TRUE(runOracle(src.str(), seed, OracleOptions{}).ok());
}

// ---------------------------------------------------------------------
// Corpus replay: every committed repro in tests/corpus/ must pass the
// oracle on trunk — each entry pins a fixed bug class.
// ---------------------------------------------------------------------

TEST(FuzzCorpus, EveryCommittedReproPassesOnTrunk)
{
    const fs::path corpus(DACSIM_CORPUS_DIR);
    ASSERT_TRUE(fs::exists(corpus)) << corpus;
    int replayed = 0;
    for (const auto &entry : fs::directory_iterator(corpus)) {
        if (entry.path().extension() != ".dacasm")
            continue;
        std::ifstream in(entry.path(), std::ios::binary);
        ASSERT_TRUE(in.good()) << entry.path();
        std::ostringstream src;
        src << in.rdbuf();
        SCOPED_TRACE(entry.path().filename().string());
        OracleVerdict v = runOracle(src.str(), reproSeed(src.str()),
                                    OracleOptions{});
        EXPECT_TRUE(v.ok())
            << oracleStatusName(v.status) << ": " << v.detail;
        ++replayed;
    }
    EXPECT_GT(replayed, 0) << "empty corpus — replay tier is vacuous";
}

} // namespace
