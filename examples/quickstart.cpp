/**
 * @file
 * Quickstart: assemble a small streaming kernel, decouple it with the
 * DAC compiler, and run it on all four machine models (baseline GTX
 * 480, CAE, MTA, DAC), printing cycle counts, instruction counts and
 * the final-memory checksum (which must be identical everywhere).
 *
 * The kernel is the paper's running example (Figure 4): each thread
 * walks a column of a row-major matrix, incrementing every element.
 */

#include <cstdio>

#include "common/config.h"
#include "compiler/cfg.h"
#include "compiler/decoupler.h"
#include "isa/assembler.h"
#include "mem/gpu_memory.h"
#include "sim/gpu.h"

using namespace dacsim;

namespace
{

const char *kernelSrc = R"(
.kernel example_kernel
.param A B dim num
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;         // tid
    shl r2, r1, 2;
    add r3, $A, r2;            // addrA = A + 4*tid
    add r4, $B, r2;            // addrB = B + 4*tid
    mov r5, 0;                 // i = 0
LOOP:
    ld.global.u32 r6, [r3];    // tmp = A[i*num+tid]
    add r7, r6, 1;
    st.global.u32 [r4], r7;    // B[i*num+tid] = tmp+1
    add r5, r5, 1;
    mul r8, $num, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, $dim, r5;
    @p0 bra LOOP;
    exit;
)";

} // namespace

int
main()
{
    // Problem size: `num` threads each walking `dim` rows.
    const int num = 64 * 240;     // 240 CTAs of 64 threads
    const int dim = 24;
    const long long elems = static_cast<long long>(num) * dim;

    Kernel kernel = assemble(kernelSrc);
    analyzeControlFlow(kernel);

    DacConfig dcfg;
    DecoupledKernel dec = decouple(kernel, dcfg);
    std::printf("=== dacsim quickstart ===\n\n");
    std::printf("original kernel:\n%s\n", kernel.disassemble().c_str());
    std::printf("affine stream:\n%s\n", dec.affine.disassemble().c_str());
    std::printf("non-affine stream:\n%s\n",
                dec.nonAffine.disassemble().c_str());

    std::printf("%-10s %12s %12s %12s %10s %10s\n", "machine", "cycles",
                "warp insts", "affine insts", "speedup", "checksum");

    Cycle baselineCycles = 0;
    for (Technique tech : {Technique::Baseline, Technique::Cae,
                           Technique::Mta, Technique::Dac}) {
        GpuMemory gmem;
        Addr a = gmem.alloc(elems * 4);
        Addr b = gmem.alloc(elems * 4);
        for (long long i = 0; i < elems; ++i)
            gmem.write(a + 4 * i, static_cast<std::uint64_t>(i * 7 % 1000),
                       4);

        GpuConfig gcfg;
        CaeConfig ccfg;
        MtaConfig mcfg;
        Gpu gpu(gcfg, tech, dcfg, ccfg, mcfg, gmem);

        std::vector<RegVal> params = {static_cast<RegVal>(a),
                                      static_cast<RegVal>(b), dim, num};
        LaunchInfo li;
        li.grid = {240, 1, 1};
        li.block = {64, 1, 1};
        li.params = &params;
        if (tech == Technique::Dac) {
            li.kernel = &dec.nonAffine;
            li.affineKernel = &dec.affine;
        } else {
            li.kernel = &kernel;
            if (tech == Technique::Baseline)
                li.coverageMarks = &dec.coveredByDac;
        }
        const RunStats &s = gpu.launch(li);
        if (tech == Technique::Baseline)
            baselineCycles = s.cycles;
        std::printf("%-10s %12llu %12llu %12llu %9.2fx %10llx\n",
                    techniqueName(tech),
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(s.warpInsts),
                    static_cast<unsigned long long>(s.affineWarpInsts),
                    static_cast<double>(baselineCycles) /
                        static_cast<double>(s.cycles),
                    static_cast<unsigned long long>(
                        gmem.checksum(b, static_cast<std::uint64_t>(
                                             elems * 4))));
    }
    return 0;
}
