/**
 * @file
 * run_benchmark — command-line driver over the 29-benchmark suite.
 *
 * Usage:
 *   run_benchmark                      # list benchmarks
 *   run_benchmark LIB                  # run LIB on all four machines
 *   run_benchmark LIB dac              # one machine only
 *   run_benchmark ALL [scale]          # the whole suite, all machines
 *
 * For every run the final-memory checksums are compared against the
 * baseline: a mismatch means a simulator bug, and the tool fails.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "energy/energy.h"
#include "harness/runner.h"

using namespace dacsim;

namespace
{

int
runOne(const Workload &wl, double scale)
{
    std::printf("%-4s (%s)\n", wl.name.c_str(), wl.fullName.c_str());
    // fromEnv so DACSIM_* knobs (fault plans, lint audit, simulation
    // core) apply to example runs too.
    RunOptions opt = RunOptions::fromEnv(wl.name);
    opt.scale = scale;
    RunOutcome base;
    int rc = 0;
    for (Technique t : {Technique::Baseline, Technique::Cae,
                        Technique::Mta, Technique::Dac}) {
        opt.tech = t;
        RunOutcome r = runWorkload(wl, opt);
        if (t == Technique::Baseline)
            base = r;
        double speedup = static_cast<double>(base.stats.cycles) /
                         static_cast<double>(r.stats.cycles);
        double energy = computeEnergy(r.stats).total() /
                        computeEnergy(base.stats).total();
        bool ok = r.checksums == base.checksums;
        std::printf("  %-9s cycles=%10llu speedup=%5.2f insts=%9llu "
                    "energy=%.3f %s\n",
                    techniqueName(t),
                    static_cast<unsigned long long>(r.stats.cycles),
                    speedup,
                    static_cast<unsigned long long>(
                        r.stats.totalWarpInsts()),
                    energy, ok ? "" : "CHECKSUM MISMATCH!");
        if (!ok)
            rc = 1;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("benchmarks:\n");
        for (const Workload &w : allWorkloads())
            std::printf("  %-4s %-28s %s\n", w.name.c_str(),
                        w.fullName.c_str(),
                        w.memoryIntensive ? "memory-intensive"
                                          : "compute-intensive");
        std::printf("usage: %s <NAME|ALL> [scale] | <NAME> "
                    "<baseline|cae|mta|dac>\n",
                    argv[0]);
        return 0;
    }

    std::string name = argv[1];
    double scale = 1.0;
    if (argc > 2 && std::isdigit(static_cast<unsigned char>(argv[2][0])))
        scale = std::atof(argv[2]);

    try {
        if (name == "ALL") {
            int rc = 0;
            for (const Workload &w : allWorkloads())
                rc |= runOne(w, scale);
            return rc;
        }
        const Workload &wl = findWorkload(name);
        if (argc > 2 && !std::isdigit(
                            static_cast<unsigned char>(argv[2][0]))) {
            RunOptions opt = RunOptions::fromEnv(wl.name);
            std::string tech = argv[2];
            opt.tech = tech == "dac"   ? Technique::Dac
                       : tech == "cae" ? Technique::Cae
                       : tech == "mta" ? Technique::Mta
                                       : Technique::Baseline;
            RunOutcome r = runWorkload(wl, opt);
            std::printf("%s on %s: %llu cycles, %llu warp insts\n",
                        wl.name.c_str(), techniqueName(opt.tech),
                        static_cast<unsigned long long>(r.stats.cycles),
                        static_cast<unsigned long long>(
                            r.stats.totalWarpInsts()));
            return 0;
        }
        return runOne(wl, scale);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
