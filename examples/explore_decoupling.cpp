/**
 * @file
 * explore_decoupling — a compiler-explorer-style tool: feed it a
 * kernel in dacsim assembly (a file path, or stdin with "-") and it
 * prints the affine type analysis verdict per instruction, the
 * potential-affine classification (Fig 6), and the two decoupled
 * streams. Useful for understanding what DAC can and cannot decouple
 * in your own kernels.
 *
 * Example:
 *   echo '.kernel k
 *   .param A
 *       shl r0, tid.x, 2;
 *       add r1, $A, r0;
 *       ld.global.u32 r2, [r1];
 *       st.global.u32 [r1], r2;
 *       exit;' | explore_decoupling -
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "compiler/affine_types.h"
#include "compiler/cfg.h"
#include "compiler/decoupler.h"
#include "compiler/reaching_defs.h"
#include "isa/assembler.h"

using namespace dacsim;

namespace
{

const char *
kindName(ValKind k)
{
    switch (k) {
      case ValKind::Scalar: return "scalar";
      case ValKind::Affine: return "affine";
      case ValKind::NonAffine: return "non-affine";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string source;
    if (argc > 1 && std::string(argv[1]) != "-") {
        std::ifstream f(argv[1]);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::stringstream ss;
        ss << f.rdbuf();
        source = ss.str();
    } else {
        std::stringstream ss;
        ss << std::cin.rdbuf();
        source = ss.str();
    }

    try {
        Kernel k = assemble(source);
        Cfg cfg = analyzeControlFlow(k);
        ReachingDefs rd(k, cfg);
        DacConfig dcfg;
        AffineAnalysis aa(k, cfg, rd, dcfg.maxDivergentConditions);
        DecoupledKernel dec = decouple(k, dcfg);

        std::printf("=== per-instruction affine analysis ===\n");
        for (int pc = 0; pc < k.numInsts(); ++pc) {
            const Instruction &inst = k.insts[pc];
            std::string verdict;
            if (inst.dst.isNone()) {
                verdict = "-";
            } else {
                TypeInfo t = aa.defType(pc);
                verdict = kindName(t.kind);
                if (t.conds)
                    verdict += "+" + std::to_string(t.conds) + "cond";
                if (t.hasMod)
                    verdict += "+mod";
            }
            const char *fate =
                dec.decoupled.at(static_cast<std::size_t>(pc))
                    ? "DECOUPLED"
                    : dec.coveredByDac.at(static_cast<std::size_t>(pc))
                          ? "moved to affine warp"
                          : dec.inAffineStream.at(
                                static_cast<std::size_t>(pc))
                                ? "replicated"
                                : "";
            std::printf("  %2d: %-40s %-14s %s\n", pc,
                        instToString(inst, k.params).c_str(),
                        verdict.c_str(), fate);
        }

        PotentialAffine pa = classifyPotentialAffine(k);
        std::printf("\n=== potential affine (Fig 6 classification) ===\n");
        std::printf("  arithmetic %d, memory %d, branch %d of %d "
                    "static insts (%.1f%%)\n",
                    pa.arithmetic, pa.memory, pa.branch, pa.totalInsts,
                    100.0 * pa.fraction());

        std::printf("\n=== decoupling summary ===\n");
        std::printf("  loads %d, stores %d, predicates %d%s\n",
                    dec.numDecoupledLoads, dec.numDecoupledStores,
                    dec.numDecoupledPreds,
                    dec.anyDecoupled ? "" : "  (nothing decoupled)");
        std::printf("\n=== affine stream ===\n%s",
                    dec.affine.disassemble().c_str());
        std::printf("\n=== non-affine stream ===\n%s",
                    dec.nonAffine.disassemble().c_str());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
