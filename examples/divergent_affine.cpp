/**
 * @file
 * Divergent affine computation walkthrough (paper Sections 4.4-4.6).
 *
 * Runs three kernels that exercise the affine datapath's extensions —
 * a boundary-clamped stencil (min/max divergent tuples), a divergent
 * base-offset pair behind an affine branch (Figure 14), and a
 * mod-type address (FFT-style) — printing for each the decoupled
 * streams and the baseline-vs-DAC cycle counts, and verifying the
 * outputs match.
 */

#include <cstdio>

#include "common/config.h"
#include "compiler/cfg.h"
#include "compiler/decoupler.h"
#include "isa/assembler.h"
#include "mem/gpu_memory.h"
#include "sim/gpu.h"

using namespace dacsim;

namespace
{

struct Demo
{
    const char *title;
    const char *src;
};

const Demo demos[] = {
    {"Boundary-clamped stencil (min/max divergent tuples)", R"(
.kernel clamp_stencil
.param in out w
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    sub r2, r1, 1;
    max r2, r2, 0;             // left neighbour, clamped
    add r3, r1, 1;
    sub r4, $w, 1;
    min r3, r3, r4;            // right neighbour, clamped
    shl r5, r2, 2;
    add r5, $in, r5;
    ld.global.u32 r6, [r5];
    shl r7, r3, 2;
    add r7, $in, r7;
    ld.global.u32 r8, [r7];
    add r9, r6, r8;
    shl r10, r1, 2;
    add r11, $out, r10;
    st.global.u32 [r11], r9;
    exit;
)"},
    {"Divergent base-offset pair (paper Figure 14)", R"(
.kernel figure14
.param in out n
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    setp.lt p0, r1, $n;
    mov r2, 0;                 // path B: offset 0
    @p0 shl r2, r1, 2;         // path A: offset tid*4
    add r3, $in, r2;
    ld.global.u32 r4, [r3];    // one load, two affine tuples
    shl r5, r1, 2;
    add r6, $out, r5;
    st.global.u32 [r6], r4;
    exit;
)"},
    {"Mod-type tuple addressing (FFT/mersenne-style)", R"(
.kernel mod_ring
.param in out ring
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    mul r2, r1, 7;
    mod r3, r2, $ring;         // (tid*7) mod ring: a mod-type tuple
    shl r4, r3, 2;
    add r5, $in, r4;
    ld.global.u32 r6, [r5];
    shl r7, r1, 2;
    add r8, $out, r7;
    st.global.u32 [r8], r6;
    exit;
)"},
};

} // namespace

int
main()
{
    const int ctas = 240, block = 128;
    const long long n = static_cast<long long>(ctas) * block;

    for (const Demo &demo : demos) {
        std::printf("\n==============================================\n");
        std::printf("%s\n", demo.title);
        std::printf("==============================================\n");
        Kernel k = assemble(demo.src);
        analyzeControlFlow(k);
        DacConfig dcfg;
        DecoupledKernel dec = decouple(k, dcfg);
        std::printf("affine stream:\n%s\nnon-affine stream:\n%s\n",
                    dec.affine.disassemble().c_str(),
                    dec.nonAffine.disassemble().c_str());

        Cycle baseCycles = 0;
        std::uint64_t baseSum = 0;
        for (Technique t : {Technique::Baseline, Technique::Dac}) {
            GpuMemory gmem;
            Addr in = gmem.alloc(static_cast<std::uint64_t>(n) * 4 + 64);
            Addr out = gmem.alloc(static_cast<std::uint64_t>(n) * 4);
            for (long long i = 0; i < n; ++i)
                gmem.store(in + 4 * i, i * 11 % 4097, MemWidth::U32);
            std::vector<RegVal> params = {
                static_cast<RegVal>(in), static_cast<RegVal>(out),
                static_cast<RegVal>(n / 2)};
            GpuConfig gcfg;
            CaeConfig ccfg;
            MtaConfig mcfg;
            Gpu gpu(gcfg, t, dcfg, ccfg, mcfg, gmem);
            LaunchInfo li;
            li.grid = {ctas, 1, 1};
            li.block = {block, 1, 1};
            li.params = &params;
            if (t == Technique::Dac) {
                li.kernel = &dec.nonAffine;
                li.affineKernel = &dec.affine;
            } else {
                li.kernel = &k;
            }
            gpu.launch(li);
            std::uint64_t sum = gmem.checksum(
                out, static_cast<std::uint64_t>(n) * 4);
            if (t == Technique::Baseline) {
                baseCycles = gpu.stats().cycles;
                baseSum = sum;
            } else {
                std::printf("baseline %llu cycles, DAC %llu cycles "
                            "-> %.2fx; outputs %s\n",
                            static_cast<unsigned long long>(baseCycles),
                            static_cast<unsigned long long>(
                                gpu.stats().cycles),
                            static_cast<double>(baseCycles) /
                                static_cast<double>(gpu.stats().cycles),
                            sum == baseSum ? "IDENTICAL" : "DIFFER!");
                if (sum != baseSum)
                    return 1;
            }
        }
    }
    return 0;
}
